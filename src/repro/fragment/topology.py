"""The node hierarchy of the smart environment.

Figure 3 of the paper shows the peer chain: sensors feed appliances, which
feed the apartment PC (local server), which feeds the provider's cloud.  A
:class:`Topology` models that hierarchy together with node capacities; the
PArADISE processor walks it bottom-up when executing a fragment plan.

Topologies may be *chains* (the seed behaviour: one node per hop) or *trees*
(many sibling sensors feeding a shared appliance, many appliances feeding the
apartment PC).  Every node has at most one parent; the most powerful node
(the cloud) is the root.  When nodes carry no explicit ``parent``, a chain is
derived: each node feeds the nearest strictly more powerful node, which keeps
every pre-tree caller working unchanged.  The parallel fragment runtime
(:mod:`repro.runtime`) partitions the bottom fragment across sibling leaves
and merges the partials at their common ancestor.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.fragment.capabilities import CapabilityClass, CapabilityLevel, capability_for


@dataclass
class Node:
    """One processing node of the vertical architecture."""

    name: str
    level: CapabilityLevel
    #: Relative CPU power; defaults to the level's typical power.
    cpu_power: Optional[float] = None
    #: Free main memory in MB, used for the preprocessor's capacity check.
    free_memory_mb: float = 512.0
    #: True when the node sits inside the user's apartment (its output never
    #: "leaves the apartment"; only the edge towards the cloud is counted as
    #: leaving).
    inside_apartment: bool = True
    #: Name of the node this one feeds.  ``None`` means "derive from the
    #: chain order" (every node feeds the nearest more powerful node); the
    #: root's derived parent is itself absent.
    parent: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cpu_power is None:
            self.cpu_power = capability_for(self.level).relative_power

    @property
    def capability(self) -> CapabilityClass:
        """The node's capability class."""
        return capability_for(self.level)

    def can_hold_rows(self, rows: int, bytes_per_row: float = 64.0) -> bool:
        """Capacity check: do ``rows`` fit into the node's free memory?"""
        return rows * bytes_per_row / (1024.0 * 1024.0) <= self.free_memory_mb


class Topology:
    """A processing hierarchy from the sensors up to the cloud.

    Nodes are kept ordered from the least powerful (sensor) to the most
    powerful (cloud); within one capability level the caller's order is
    preserved, which also fixes the deterministic partition/merge order the
    parallel runtime relies on.
    """

    def __init__(self, nodes: Iterable[Node]) -> None:
        self._nodes = list(nodes)
        if not self._nodes:
            raise ValueError("Topology requires at least one node")
        # Order from the least powerful (sensor) to the most powerful (cloud).
        self._nodes.sort(key=lambda node: int(node.level), reverse=True)
        names = [node.name for node in self._nodes]
        if len(names) != len(set(names)):
            raise ValueError("Node names must be unique")
        self._by_name: Dict[str, Node] = {node.name: node for node in self._nodes}
        self._parents: Dict[str, Optional[str]] = self._resolve_parents()
        self._children: Dict[str, List[str]] = {node.name: [] for node in self._nodes}
        for name, parent in self._parents.items():
            if parent is not None:
                self._children[parent].append(name)
        # Liveness: nodes declared dead by the fault-tolerant runtime, in
        # death order.  Structure (parents/children) is immutable; liveness
        # is the only mutable state, guarded by its own lock because the
        # scheduler marks nodes dead from worker threads.
        self._dead: List[str] = []
        self._liveness_lock = threading.Lock()

    def _resolve_parents(self) -> Dict[str, Optional[str]]:
        """Validate explicit parent links and derive the rest chain-style."""
        parents: Dict[str, Optional[str]] = {}
        for index, node in enumerate(self._nodes):
            if node.parent is not None:
                if node.parent not in self._by_name:
                    raise ValueError(
                        f"Node {node.name!r} names unknown parent {node.parent!r}"
                    )
                parent_node = self._by_name[node.parent]
                # Data flows towards strictly more powerful nodes only.
                if int(parent_node.level) >= int(node.level):
                    raise ValueError(
                        f"Node {node.name!r} cannot feed {node.parent!r}: "
                        "parents must be strictly more powerful"
                    )
                parents[node.name] = node.parent
                continue
            # Derived chain: feed the nearest strictly more powerful node.
            parent_name: Optional[str] = None
            for candidate in self._nodes[index + 1 :]:
                if int(candidate.level) < int(node.level):
                    parent_name = candidate.name
                    break
            parents[node.name] = parent_name
        roots = [name for name, parent in parents.items() if parent is None]
        if len(roots) != 1:
            raise ValueError(f"Topology must have exactly one root, got {roots}")
        return parents

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def default_chain(
        cls,
        sensor_count: int = 1,
        appliance_count: int = 1,
        cloud_memory_mb: float = 1024 * 64,
    ) -> "Topology":
        """The canonical chain of Figure 3: sensors → appliance(s) → PC → cloud."""
        nodes: List[Node] = []
        for index in range(sensor_count):
            nodes.append(
                Node(
                    name=f"sensor_{index}" if sensor_count > 1 else "sensor",
                    level=CapabilityLevel.E4_SENSOR,
                    free_memory_mb=1.0,
                )
            )
        for index in range(appliance_count):
            nodes.append(
                Node(
                    name=f"appliance_{index}" if appliance_count > 1 else "appliance",
                    level=CapabilityLevel.E3_APPLIANCE,
                    free_memory_mb=256.0,
                )
            )
        nodes.append(Node(name="pc", level=CapabilityLevel.E2_PC, free_memory_mb=8192.0))
        nodes.append(
            Node(
                name="cloud",
                level=CapabilityLevel.E1_CLOUD,
                free_memory_mb=cloud_memory_mb,
                inside_apartment=False,
            )
        )
        return cls(nodes)

    @classmethod
    def smart_home_tree(
        cls,
        n_sensors: int = 8,
        sensors_per_appliance: int = 4,
        cloud_memory_mb: float = 1024 * 64,
        sensor_memory_mb: float = 1.0,
    ) -> "Topology":
        """The tree of Figure 3: many sensors feed shared appliances.

        ``n_sensors`` leaf sensors are grouped under
        ``ceil(n_sensors / sensors_per_appliance)`` appliances; every
        appliance feeds the apartment PC, which feeds the cloud.  Sensor and
        appliance order is the partition order the parallel runtime uses, so
        it is deterministic by construction.
        """
        if n_sensors < 1:
            raise ValueError("smart_home_tree requires at least one sensor")
        if sensors_per_appliance < 1:
            raise ValueError("sensors_per_appliance must be at least 1")
        n_appliances = (n_sensors + sensors_per_appliance - 1) // sensors_per_appliance
        nodes: List[Node] = []
        for index in range(n_sensors):
            nodes.append(
                Node(
                    name=f"sensor_{index}",
                    level=CapabilityLevel.E4_SENSOR,
                    free_memory_mb=sensor_memory_mb,
                    parent=f"appliance_{index // sensors_per_appliance}",
                )
            )
        for index in range(n_appliances):
            nodes.append(
                Node(
                    name=f"appliance_{index}",
                    level=CapabilityLevel.E3_APPLIANCE,
                    free_memory_mb=256.0,
                    parent="pc",
                )
            )
        nodes.append(
            Node(name="pc", level=CapabilityLevel.E2_PC, free_memory_mb=8192.0, parent="cloud")
        )
        nodes.append(
            Node(
                name="cloud",
                level=CapabilityLevel.E1_CLOUD,
                free_memory_mb=cloud_memory_mb,
                inside_apartment=False,
            )
        )
        return cls(nodes)

    @classmethod
    def cloud_only(cls) -> "Topology":
        """Degenerate topology used by the "no pushdown" ablation baseline."""
        return cls(
            [
                Node(name="sensor", level=CapabilityLevel.E4_SENSOR, free_memory_mb=1.0),
                Node(
                    name="cloud",
                    level=CapabilityLevel.E1_CLOUD,
                    free_memory_mb=1024 * 64,
                    inside_apartment=False,
                ),
            ]
        )

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def mark_dead(self, name: str) -> None:
        """Declare ``name`` dead for scheduling (idempotent).

        The root cannot die — it is the query's origin and the place results
        are returned; a dead root is simply a failed session.
        """
        self.node(name)
        if name == self.cloud.name:
            raise ValueError(f"Cannot mark the root node {name!r} dead")
        with self._liveness_lock:
            if name not in self._dead:
                self._dead.append(name)

    def revive_all(self) -> None:
        """Bring every dead node back (used between independent runs)."""
        with self._liveness_lock:
            self._dead.clear()

    def is_alive(self, name: str) -> bool:
        """True unless ``name`` has been marked dead."""
        self.node(name)
        with self._liveness_lock:
            return name not in self._dead

    @property
    def dead_nodes(self) -> List[str]:
        """Names of dead nodes, in the order they died."""
        with self._liveness_lock:
            return list(self._dead)

    @property
    def live_nodes(self) -> List[Node]:
        """All live nodes, least powerful first."""
        with self._liveness_lock:
            dead = set(self._dead)
        return [node for node in self._nodes if node.name not in dead]

    def nearest_live_ancestor(self, name: str) -> Node:
        """The closest live strict ancestor of ``name`` (root worst case)."""
        for ancestor in self.path_to_root(name)[1:]:
            if self.is_alive(ancestor.name):
                return ancestor
        raise ValueError(f"Node {name!r} has no live ancestor")

    def without(self, names: Sequence[str]) -> "Topology":
        """A new topology with ``names`` removed (the re-plan input).

        Children of a removed node re-parent to its nearest surviving
        ancestor, so the tree stays connected and data still flows towards
        the root; surviving-node order (and with it the partition/merge
        order of the parallel runtime) is preserved.  The returned topology
        starts fully alive.
        """
        removed = set(names)
        if self.cloud.name in removed:
            raise ValueError("Cannot remove the root node from a topology")
        unknown = removed - set(self._by_name)
        if unknown:
            raise KeyError(f"Unknown nodes: {sorted(unknown)}")

        def live_parent(name: str) -> Optional[str]:
            current = self._parents[name]
            while current is not None and current in removed:
                current = self._parents[current]
            return current

        survivors = [
            dataclasses.replace(node, parent=live_parent(node.name))
            for node in self._nodes
            if node.name not in removed
        ]
        return Topology(survivors)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """All nodes, least powerful first."""
        return list(self._nodes)

    def __iter__(self):
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> Node:
        """Return the node with the given name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"Unknown node: {name}") from None

    # ------------------------------------------------------------------
    # tree structure
    # ------------------------------------------------------------------
    def parent_of(self, name: str) -> Optional[Node]:
        """The node ``name`` feeds, or ``None`` for the root."""
        self.node(name)  # raise on unknown names
        parent = self._parents[name]
        return self._by_name[parent] if parent is not None else None

    def children_of(self, name: str) -> List[Node]:
        """The nodes feeding ``name``, in deterministic topology order."""
        self.node(name)
        return [self._by_name[child] for child in self._children[name]]

    @property
    def leaves(self) -> List[Node]:
        """Nodes nothing feeds into (the data sources), topology order."""
        return [node for node in self._nodes if not self._children[node.name]]

    @property
    def is_tree(self) -> bool:
        """True when any node has more than one child (not a plain chain)."""
        return any(len(children) > 1 for children in self._children.values())

    def path_to_root(self, name: str) -> List[Node]:
        """The node itself followed by its ancestors up to the root."""
        path = [self.node(name)]
        seen = {name}
        current: Optional[str] = self._parents[name]
        while current is not None:
            if current in seen:
                raise ValueError(f"Topology contains a parent cycle at {current!r}")
            seen.add(current)
            path.append(self._by_name[current])
            current = self._parents[current]
        return path

    def common_ancestor(self, names: Sequence[str]) -> Node:
        """The nearest node all of ``names`` (or their data) flow through."""
        if not names:
            raise ValueError("common_ancestor requires at least one node name")
        paths = [self.path_to_root(name) for name in names]
        candidates = set(node.name for node in paths[0])
        for path in paths[1:]:
            candidates &= {node.name for node in path}
        if not candidates:
            raise ValueError(f"Nodes {list(names)} share no common ancestor")
        for node in paths[0]:  # nearest first
            if node.name in candidates:
                return node
        raise AssertionError("unreachable")

    @property
    def levels(self) -> List[CapabilityLevel]:
        """The distinct capability levels present, least powerful first."""
        seen: List[CapabilityLevel] = []
        for node in self._nodes:
            if node.level not in seen:
                seen.append(node.level)
        return seen

    def nodes_at(self, level: CapabilityLevel) -> List[Node]:
        """All nodes of the given level."""
        return [node for node in self._nodes if node.level == level]

    def first_node_at_or_above(self, level: CapabilityLevel) -> Node:
        """The least powerful node whose level is at least ``level``.

        "At least" means equally or more powerful; when a level is absent from
        the topology the next more powerful node takes over (the paper's rule
        that a unit lacking power hands the work to a more powerful node).
        """
        for node in self._nodes:  # least powerful first
            if node.level.is_at_least(level):
                return node
        return self._nodes[-1]

    @property
    def cloud(self) -> Node:
        """The most powerful node (the query's origin)."""
        return self._nodes[-1]

    @property
    def boundary_index(self) -> int:
        """Index of the first node outside the apartment (data leaving point)."""
        for index, node in enumerate(self._nodes):
            if not node.inside_apartment:
                return index
        return len(self._nodes)

    def describe(self) -> List[Dict[str, str]]:
        """Tabular description used in reports and examples."""
        return [
            {
                "node": node.name,
                "level": node.level.short_name,
                "system": node.capability.system,
                "inside_apartment": str(node.inside_apartment),
                "cpu_power": f"{node.cpu_power:g}",
            }
            for node in self._nodes
        ]
