"""Vertical fragmentation of queries (Section 4 of the paper).

The fragmenter splits a (policy-rewritten) query into a chain of fragments
``Q1 .. Qj`` plus a remainder ``Qδ`` such that each fragment runs on the
lowest node of the processing hierarchy that is still capable of evaluating
it, and only the strongly reduced result ``d'`` ever reaches the cloud:

``Q(d)  →  Qδ(d')``  with  ``d' = A(Qj(...Q1(d)...))``

* :mod:`repro.fragment.capabilities` — the capability classes E1–E4 of
  Table 1,
* :mod:`repro.fragment.topology` — the node hierarchy (cloud, PC, appliances,
  sensors),
* :mod:`repro.fragment.plan` — fragment plan data structures,
* :mod:`repro.fragment.fragmenter` — the splitting algorithm.
"""

from repro.fragment.capabilities import (
    CAPABILITY_LEVELS,
    CapabilityClass,
    CapabilityLevel,
    capability_for,
    lowest_capable_level,
)
from repro.fragment.topology import Node, Topology
from repro.fragment.plan import FragmentPlan, QueryFragment
from repro.fragment.fragmenter import FragmentationError, VerticalFragmenter

__all__ = [
    "CAPABILITY_LEVELS",
    "CapabilityClass",
    "CapabilityLevel",
    "capability_for",
    "lowest_capable_level",
    "Node",
    "Topology",
    "FragmentPlan",
    "QueryFragment",
    "FragmentationError",
    "VerticalFragmenter",
]
