"""The vertical fragmentation algorithm.

Given a (policy-rewritten) query, :class:`VerticalFragmenter` produces the
chain of staged queries of Section 4.2:

* the sensor evaluates only attribute-vs-constant filters over its own stream
  (``SELECT * FROM stream WHERE z < 2``),
* an appliance evaluates attribute-vs-attribute comparisons and drops the
  columns no later stage needs (``SELECT x, y, z, t FROM d1 WHERE x > y``),
* a more capable appliance (the home media center) computes the grouping and
  HAVING clause (``SELECT x, y, AVG(z) AS zAVG, t FROM d2 GROUP BY x, y
  HAVING SUM(z) > 100``),
* the apartment PC evaluates window functions and other full-SQL constructs
  (``SELECT regr_intercept(y, x) OVER (...) FROM d3``),
* the cloud only receives the final, strongly reduced relation ``d'`` and runs
  the remainder (in the paper: the surrounding R machine-learning call).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.fragment.capabilities import CapabilityLevel, lowest_capable_level
from repro.fragment.plan import (
    FragmentPlan,
    QueryFragment,
    is_decomposable_aggregation,
    is_row_distributive,
)
from repro.fragment.topology import Topology
from repro.sql import ast
from repro.sql.analysis import analyze_query
from repro.sql.errors import SqlError
from repro.sql.render import render_expression
from repro.sql.visitor import clone, collect_column_names


class FragmentationError(SqlError):
    """Raised when a query cannot be fragmented."""


class VerticalFragmenter:
    """Splits queries into pushed-down fragments plus a remainder."""

    def __init__(self, topology: Optional[Topology] = None) -> None:
        self.topology = topology or Topology.default_chain()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def fragment(self, query: ast.Query) -> FragmentPlan:
        """Fragment ``query`` and assign each fragment to a topology node."""
        stages = self._flatten_chain(query)
        innermost = stages[0]

        fragments: List[QueryFragment] = []
        if isinstance(innermost, ast.SelectQuery) and isinstance(
            innermost.from_clause, ast.TableRef
        ):
            fragments.extend(self._split_innermost(innermost))
            outer_stages = stages[1:]
        else:
            # The innermost block is a join / set operation / complex relation:
            # treat the whole block as a single fragment.
            fragments.append(self._whole_stage_fragment(innermost, index=1, input_name=self._base_name(innermost)))
            outer_stages = stages[1:]

        for stage in outer_stages:
            previous = fragments[-1]
            fragments.append(
                self._outer_stage_fragment(stage, index=len(fragments) + 1, input_name=previous.name)
            )

        self._enforce_monotonic_levels(fragments)
        self._assign_nodes(fragments)

        plan = FragmentPlan(
            original_query=clone(query),
            fragments=fragments,
            remainder_description="pass-through (result d' is consumed by the analysis remainder)",
            result_name=fragments[-1].name if fragments else "d_prime",
        )
        return plan

    def cloud_only_plan(self, query: ast.Query) -> FragmentPlan:
        """Baseline plan without pushdown: ship the raw data, run Q at the cloud."""
        base_name = self._base_name(query)
        raw = ast.SelectQuery(
            items=[ast.SelectItem(expression=ast.Star())],
            from_clause=ast.TableRef(name=base_name),
        )
        fragment = QueryFragment(
            name="d1",
            query=raw,
            level=CapabilityLevel.E4_SENSOR,
            input_name=base_name,
            description="raw sensor data shipped unchanged (no pushdown)",
        )
        self._assign_nodes([fragment])
        return FragmentPlan(
            original_query=clone(query),
            fragments=[fragment],
            remainder_description="original query Q executed at the cloud over the raw data",
            remainder_query=clone(query),
            remainder_input_alias=base_name,
            result_name="d1",
        )

    # ------------------------------------------------------------------
    # stage discovery
    # ------------------------------------------------------------------
    def _flatten_chain(self, query: ast.Query) -> List[ast.Query]:
        """Return the chain of SELECT stages, innermost first."""
        stages: List[ast.Query] = []
        current: ast.Query = query
        while (
            isinstance(current, ast.SelectQuery)
            and isinstance(current.from_clause, ast.SubqueryRef)
        ):
            stages.append(current)
            current = current.from_clause.query
        stages.append(current)
        return list(reversed(stages))

    def _base_name(self, query: ast.Query) -> str:
        tables = [
            node
            for node in _walk_from(query)
            if isinstance(node, ast.TableRef)
        ]
        if tables:
            return tables[0].name
        return "d"

    # ------------------------------------------------------------------
    # innermost stage splitting
    # ------------------------------------------------------------------
    def _split_innermost(self, stage: ast.SelectQuery) -> List[QueryFragment]:
        assert isinstance(stage.from_clause, ast.TableRef)
        base_name = stage.from_clause.name
        fragments: List[QueryFragment] = []

        constant_terms, attribute_terms = self._split_where(stage.where)

        # --- sensor fragment: SELECT * with constant-only filters ------------
        sensor_query = ast.SelectQuery(
            items=[ast.SelectItem(expression=ast.Star())],
            from_clause=ast.TableRef(name=base_name),
            where=ast.conjunction(*constant_terms),
        )
        fragments.append(
            QueryFragment(
                name=f"d{len(fragments) + 1}",
                query=sensor_query,
                level=CapabilityLevel.E4_SENSOR,
                input_name=base_name,
                description="sensor-level constant filter over the raw stream",
            )
        )

        # --- appliance fragment: attribute comparisons + projection pruning --
        needed_columns = self._columns_needed_by_stage(stage)
        has_projection = bool(needed_columns) and not stage.is_select_star
        if attribute_terms or has_projection:
            items = (
                [ast.SelectItem(expression=ast.Column(name=name)) for name in needed_columns]
                if needed_columns
                else [ast.SelectItem(expression=ast.Star())]
            )
            appliance_query = ast.SelectQuery(
                items=items,
                from_clause=ast.TableRef(name=fragments[-1].name),
                where=ast.conjunction(*attribute_terms),
            )
            fragments.append(
                QueryFragment(
                    name=f"d{len(fragments) + 1}",
                    query=appliance_query,
                    level=CapabilityLevel.E3_APPLIANCE,
                    input_name=fragments[-1].name,
                    description="appliance-level attribute comparison and column pruning",
                )
            )

        # --- aggregation / final projection of the innermost stage -----------
        needs_final_projection = bool(stage.group_by) or stage.having is not None or any(
            not isinstance(item.expression, (ast.Column, ast.Star)) for item in stage.items
        )
        if needs_final_projection:
            final_query = ast.SelectQuery(
                items=[clone(item) for item in stage.items],
                from_clause=ast.TableRef(name=fragments[-1].name),
                group_by=[clone(expression) for expression in stage.group_by],
                having=clone(stage.having) if stage.having is not None else None,
                order_by=[clone(item) for item in stage.order_by],
                limit=stage.limit,
                offset=stage.offset,
                distinct=stage.distinct,
            )
            level = lowest_capable_level(analyze_query(final_query))
            fragments.append(
                QueryFragment(
                    name=f"d{len(fragments) + 1}",
                    query=final_query,
                    level=level,
                    input_name=fragments[-1].name,
                    description="aggregation / projection stage of the innermost query",
                )
            )
        elif stage.order_by or stage.limit is not None or stage.distinct:
            # Ordering/limits without aggregation still need an appliance.
            final_query = ast.SelectQuery(
                items=[ast.SelectItem(expression=ast.Star())],
                from_clause=ast.TableRef(name=fragments[-1].name),
                order_by=[clone(item) for item in stage.order_by],
                limit=stage.limit,
                offset=stage.offset,
                distinct=stage.distinct,
            )
            fragments.append(
                QueryFragment(
                    name=f"d{len(fragments) + 1}",
                    query=final_query,
                    level=CapabilityLevel.E3_APPLIANCE,
                    input_name=fragments[-1].name,
                    description="ordering / deduplication stage of the innermost query",
                )
            )
        return fragments

    def _split_where(
        self, where: Optional[ast.Expression]
    ) -> Tuple[List[ast.Expression], List[ast.Expression]]:
        """Split WHERE terms into sensor-capable and appliance-level terms."""
        constant_terms: List[ast.Expression] = []
        attribute_terms: List[ast.Expression] = []
        for term in ast.conjunction_terms(where):
            if self._is_constant_comparison(term):
                constant_terms.append(term)
            else:
                attribute_terms.append(term)
        return constant_terms, attribute_terms

    @staticmethod
    def _is_constant_comparison(term: ast.Expression) -> bool:
        """True for ``column <op> literal`` terms a sensor can evaluate."""
        if not isinstance(term, ast.BinaryOp):
            return False
        if term.operator.upper() in {"AND", "OR"}:
            return False
        sides = (term.left, term.right)
        has_column = any(isinstance(side, ast.Column) for side in sides)
        has_literal = any(isinstance(side, ast.Literal) for side in sides)
        only_simple = all(isinstance(side, (ast.Column, ast.Literal)) for side in sides)
        return has_column and has_literal and only_simple

    def _columns_needed_by_stage(self, stage: ast.SelectQuery) -> List[str]:
        """Columns the rest of the innermost stage needs, in a stable order."""
        needed: List[str] = []
        seen: Set[str] = set()

        def add_from(node: Optional[ast.Node]) -> None:
            if node is None:
                return
            for name in collect_column_names(node):
                if name not in seen:
                    seen.add(name)
                    needed.append(name)

        for item in stage.items:
            if isinstance(item.expression, ast.Star):
                return []  # star: no pruning possible
            add_from(item.expression)
        for expression in stage.group_by:
            add_from(expression)
        add_from(stage.having)
        for order_item in stage.order_by:
            add_from(order_item.expression)
        return needed

    # ------------------------------------------------------------------
    # outer stages
    # ------------------------------------------------------------------
    def _outer_stage_fragment(
        self, stage: ast.Query, index: int, input_name: str
    ) -> QueryFragment:
        if not isinstance(stage, ast.SelectQuery):
            return self._whole_stage_fragment(stage, index, input_name)
        rebased = clone(stage)
        rebased.from_clause = ast.TableRef(name=input_name)
        level = lowest_capable_level(analyze_query(rebased))
        return QueryFragment(
            name=f"d{index}",
            query=rebased,
            level=level,
            input_name=input_name,
            description="outer query stage rebased onto the previous fragment's result",
        )

    def _whole_stage_fragment(
        self, stage: ast.Query, index: int, input_name: str
    ) -> QueryFragment:
        level = lowest_capable_level(analyze_query(stage))
        return QueryFragment(
            name=f"d{index}",
            query=clone(stage),
            level=level,
            input_name=input_name,
            description="complex block executed as a single fragment",
        )

    # ------------------------------------------------------------------
    # level / node assignment
    # ------------------------------------------------------------------
    def _enforce_monotonic_levels(self, fragments: Sequence[QueryFragment]) -> None:
        """Data only flows upwards: later fragments may not need weaker nodes."""
        strongest_so_far = CapabilityLevel.E4_SENSOR
        for fragment in fragments:
            if int(fragment.level) > int(strongest_so_far):
                fragment.level = strongest_so_far
            else:
                strongest_so_far = fragment.level

    def _assign_nodes(self, fragments: Sequence[QueryFragment]) -> None:
        available_levels = set(self.topology.levels)
        for fragment in fragments:
            level = fragment.level
            if level not in available_levels:
                node = self.topology.first_node_at_or_above(level)
                fragment.level = node.level
                fragment.assigned_node = node.name
            else:
                fragment.assigned_node = self.topology.nodes_at(level)[0].name
            # Row-distributive fragments may fan out over sibling nodes; the
            # parallel runtime overrides the single-node assignment with one
            # task per partition and a merge at the siblings' common ancestor.
            fragment.partitionable = is_row_distributive(fragment.query)
            # Decomposable aggregation stages run as leaf partial
            # aggregation with per-level combines instead of a global merge.
            fragment.decomposable = is_decomposable_aggregation(fragment.query)


def _walk_from(query: ast.Query):
    """Yield every node of the FROM subtrees of ``query`` (all levels)."""
    stack: List[ast.Node] = [query]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.SelectQuery):
            if node.from_clause is not None:
                stack.append(node.from_clause)
        elif isinstance(node, ast.SetOperation):
            stack.extend([node.left, node.right])
        elif isinstance(node, (ast.SubqueryRef,)):
            yield node
            stack.append(node.query)
        elif isinstance(node, ast.Join):
            stack.extend([node.left, node.right])
        elif isinstance(node, ast.TableRef):
            yield node
