"""Fragment plan data structures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fragment.capabilities import CapabilityLevel
from repro.sql import ast
from repro.sql.analysis import QueryFeatures, analyze_query
from repro.sql.render import render


def is_row_distributive(query: ast.Query) -> bool:
    """True when ``query`` commutes with horizontal partitioning.

    A fragment is row-distributive when running it on each partition of its
    input and concatenating the partials (in partition order) yields exactly
    the rows of running it on the whole input: a per-row map/filter over a
    single base relation.  Grouping, HAVING, ordering, LIMIT/OFFSET,
    DISTINCT, window functions, aggregates and subqueries all see more than
    one row at a time, so any of them disqualifies the fragment.  The
    parallel runtime only fans such fragments out across sibling leaves.
    """
    if not isinstance(query, ast.SelectQuery):
        return False
    if not isinstance(query.from_clause, ast.TableRef):
        return False
    if query.group_by or query.having is not None or query.order_by:
        return False
    if query.limit is not None or query.offset is not None or query.distinct:
        return False
    stack: List[ast.Node] = [item.expression for item in query.items]
    if query.where is not None:
        stack.append(query.where)
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if isinstance(node, (ast.Query, ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
            return False
        if isinstance(node, ast.FunctionCall):
            if node.window is not None:
                return False
            if ast.is_aggregate_function(node.name):
                return False
        stack.extend(child for child in node.children() if child is not None)
    return True


@dataclass
class QueryFragment:
    """One pushed-down query fragment ``Qi`` of the plan.

    Attributes:
        name: Name of the fragment's output relation (``d1``, ``d2``, ...);
            the next fragment reads this relation.
        query: The fragment's query AST (reads either the base relation or the
            previous fragment's output).
        level: The capability level the fragment requires.
        input_name: Name of the relation the fragment reads.
        description: Short human-readable explanation (used in reports).
        partitionable: True when the fragment may run independently on
            horizontal partitions of its input (set during node assignment;
            see :func:`is_row_distributive`).
    """

    name: str
    query: ast.Query
    level: CapabilityLevel
    input_name: str
    description: str = ""
    assigned_node: Optional[str] = None
    partitionable: bool = False

    @property
    def sql(self) -> str:
        """The fragment as SQL text."""
        return render(self.query)

    @property
    def features(self) -> QueryFeatures:
        """Structural features of the fragment."""
        return analyze_query(self.query)


@dataclass
class FragmentPlan:
    """A complete vertical fragmentation ``Q → Q1 .. Qj, Qδ``.

    ``fragments`` are ordered bottom-up: the first fragment runs closest to
    the sensor, the last one produces the relation the remainder consumes.
    """

    original_query: ast.Query
    fragments: List[QueryFragment] = field(default_factory=list)
    #: Description of the remainder Qδ executed at the cloud.  For pure SQL
    #: workloads the remainder is usually a pass-through (the whole query was
    #: pushed down); for R workloads it is the surrounding ML call.
    remainder_description: str = "pass-through"
    #: Optional remainder query executed at the cloud over the shipped data.
    #: ``None`` means pass-through.  The cloud-only baseline plan sets this to
    #: the original query so that all work happens at the top.
    remainder_query: Optional[ast.Query] = None
    #: Relation name under which the shipped data is registered at the cloud
    #: before the remainder query runs.
    remainder_input_alias: str = "d"
    #: Name of the relation that finally leaves the apartment (d').
    result_name: str = "d_prime"

    @property
    def original_sql(self) -> str:
        """The original query as SQL text."""
        return render(self.original_query)

    @property
    def pushed_down_levels(self) -> List[CapabilityLevel]:
        """Levels used by the pushed-down fragments (bottom-up)."""
        return [fragment.level for fragment in self.fragments]

    def fragments_at(self, level: CapabilityLevel) -> List[QueryFragment]:
        """All fragments requiring the given level."""
        return [fragment for fragment in self.fragments if fragment.level == level]

    @property
    def deepest_pushdown(self) -> Optional[CapabilityLevel]:
        """The least powerful level that received work (None when empty)."""
        if not self.fragments:
            return None
        return max(self.pushed_down_levels, key=int)

    def describe(self) -> List[Dict[str, str]]:
        """Tabular description of the plan (one row per fragment)."""
        rows = []
        for fragment in self.fragments:
            rows.append(
                {
                    "fragment": fragment.name,
                    "level": fragment.level.short_name,
                    "node": fragment.assigned_node or "",
                    "input": fragment.input_name,
                    "sql": fragment.sql,
                    "description": fragment.description,
                }
            )
        rows.append(
            {
                "fragment": "Q_delta",
                "level": CapabilityLevel.E1_CLOUD.short_name,
                "node": "cloud",
                "input": self.fragments[-1].name if self.fragments else "d",
                "sql": "",
                "description": self.remainder_description,
            }
        )
        return rows

    def pretty(self) -> str:
        """Multi-line, paper-style listing of the staged queries."""
        lines = ["Vertical fragmentation plan:"]
        for fragment in self.fragments:
            node = f" @ {fragment.assigned_node}" if fragment.assigned_node else ""
            lines.append(f"  [{fragment.level.short_name}{node}] {fragment.name}:")
            lines.append(f"      {fragment.sql}")
            if fragment.description:
                lines.append(f"      -- {fragment.description}")
        lines.append(f"  [E1 @ cloud] Q_delta: {self.remainder_description}")
        return "\n".join(lines)
