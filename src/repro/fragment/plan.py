"""Fragment plan data structures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.aggregates import is_decomposable_aggregate
from repro.fragment.capabilities import CapabilityLevel
from repro.sql import ast
from repro.sql.analysis import QueryFeatures, analyze_query
from repro.sql.render import render


def is_row_distributive(query: ast.Query) -> bool:
    """True when ``query`` commutes with horizontal partitioning.

    A fragment is row-distributive when running it on each partition of its
    input and concatenating the partials (in partition order) yields exactly
    the rows of running it on the whole input: a per-row map/filter over a
    single base relation.  Grouping, HAVING, ordering, LIMIT/OFFSET,
    DISTINCT, window functions, aggregates and subqueries all see more than
    one row at a time, so any of them disqualifies the fragment.  The
    parallel runtime only fans such fragments out across sibling leaves.
    """
    if not isinstance(query, ast.SelectQuery):
        return False
    if not isinstance(query.from_clause, ast.TableRef):
        return False
    if query.group_by or query.having is not None or query.order_by:
        return False
    if query.limit is not None or query.offset is not None or query.distinct:
        return False
    stack: List[ast.Node] = [item.expression for item in query.items]
    if query.where is not None:
        stack.append(query.where)
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if isinstance(node, (ast.Query, ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
            return False
        if isinstance(node, ast.FunctionCall):
            if node.window is not None:
                return False
            if ast.is_aggregate_function(node.name):
                return False
        stack.extend(child for child in node.children() if child is not None)
    return True


def _contains_disqualifier(node: ast.Node, aggregates_disqualify: bool = False) -> bool:
    """True when ``node`` holds a subquery, a window, or (optionally) any
    aggregate call — the constructs a partial-aggregation stage cannot host
    inside aggregate arguments or WHERE."""
    stack: List[ast.Node] = [node]
    while stack:
        current = stack.pop()
        if current is None:
            continue
        if isinstance(
            current, (ast.Query, ast.ScalarSubquery, ast.InSubquery, ast.Exists)
        ):
            return True
        if isinstance(current, ast.FunctionCall):
            if current.window is not None:
                return True
            if aggregates_disqualify and ast.is_aggregate_function(current.name):
                return True
        stack.extend(child for child in current.children() if child is not None)
    return False


def is_decomposable_aggregation(query: ast.Query) -> bool:
    """True when ``query`` is a GROUP BY stage the runtime may decompose.

    A decomposable aggregation runs as partition-local partial aggregation
    whose mergeable states combine up the tree instead of forcing a global
    merge of raw rows (see :mod:`repro.engine.aggregates` for the
    partial-state protocol).  The requirements:

    * a single-table SELECT with grouping or aggregates and no
      DISTINCT/LIMIT/OFFSET (those see the whole relation at once),
    * plain-column GROUP BY keys with distinct, unqualified names — the
      keys double as the state relation's columns,
    * every aggregate call decomposable (mergeable accumulator exists;
      ``DISTINCT`` aggregates, ``MEDIAN`` and the regression family are
      not) and free of subqueries/windows/nested aggregates,
    * every column referenced outside aggregate arguments (items, HAVING,
      ORDER BY) is a group key — finalization only sees the merged keys,
      never a representative raw row,
    * no subqueries anywhere (their results could differ per node).
    """
    if not isinstance(query, ast.SelectQuery):
        return False
    if not isinstance(query.from_clause, ast.TableRef):
        return False
    if query.distinct or query.limit is not None or query.offset is not None:
        return False

    key_names: List[str] = []
    for expression in query.group_by:
        if not isinstance(expression, ast.Column) or expression.table:
            return False
        # ``__agg<N>`` is reserved for the state columns of the partial
        # relation; a key of that name would collide with its own states.
        if expression.name.lower().startswith("__agg"):
            return False
        key_names.append(expression.name.lower())
    if len(set(key_names)) != len(key_names):
        return False
    keys = set(key_names)

    aggregate_calls: List[ast.FunctionCall] = []
    # Walk items/HAVING/ORDER BY: aggregate arguments may use any source
    # column (they are evaluated at the leaves); everything outside them
    # must resolve against the group keys at finalize time.
    sources: List[ast.Node] = [item.expression for item in query.items]
    if query.having is not None:
        sources.append(query.having)
    sources.extend(item.expression for item in query.order_by)
    stack: List[ast.Node] = list(sources)
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if isinstance(
            node, (ast.Query, ast.ScalarSubquery, ast.InSubquery, ast.Exists)
        ):
            return False
        if isinstance(node, ast.FunctionCall):
            if node.window is not None:
                return False
            if ast.is_aggregate_function(node.name):
                aggregate_calls.append(node)
                if any(
                    _contains_disqualifier(argument, aggregates_disqualify=True)
                    for argument in node.arguments
                    if not isinstance(argument, ast.Star)
                ):
                    return False
                continue  # arguments are leaf-evaluated; skip the key check
        if isinstance(node, ast.Column):
            if node.table or node.name.lower() not in keys:
                return False
        stack.extend(child for child in node.children() if child is not None)

    if not query.group_by and not aggregate_calls:
        return False  # not an aggregation stage at all
    for call in aggregate_calls:
        is_star = len(call.arguments) == 1 and isinstance(call.arguments[0], ast.Star)
        if not is_decomposable_aggregate(
            call.name,
            is_star=is_star,
            distinct=call.distinct,
            arg_count=len(call.arguments) or 1,
        ):
            return False
    # WHERE runs before grouping on the leaf chunks; only row-local
    # expressions are allowed there (no subqueries, windows, aggregates).
    if query.where is not None and _contains_disqualifier(
        query.where, aggregates_disqualify=True
    ):
        return False
    return True


@dataclass
class QueryFragment:
    """One pushed-down query fragment ``Qi`` of the plan.

    Attributes:
        name: Name of the fragment's output relation (``d1``, ``d2``, ...);
            the next fragment reads this relation.
        query: The fragment's query AST (reads either the base relation or the
            previous fragment's output).
        level: The capability level the fragment requires.
        input_name: Name of the relation the fragment reads.
        description: Short human-readable explanation (used in reports).
        partitionable: True when the fragment may run independently on
            horizontal partitions of its input (set during node assignment;
            see :func:`is_row_distributive`).
        decomposable: True when the fragment is an aggregation stage whose
            aggregates all support the mergeable partial-state protocol
            (set during node assignment; see
            :func:`is_decomposable_aggregation`).  The parallel runtime
            replaces the global merge before such a fragment with leaf
            partial aggregation plus per-level combines.
    """

    name: str
    query: ast.Query
    level: CapabilityLevel
    input_name: str
    description: str = ""
    assigned_node: Optional[str] = None
    partitionable: bool = False
    decomposable: bool = False
    #: Estimated output rows from the cost model's cardinality estimator
    #: (filled by the processor for ``explain()``/profiled runs; advisory
    #: only, never affects results).
    estimated_rows: Optional[int] = None

    @property
    def sql(self) -> str:
        """The fragment as SQL text."""
        return render(self.query)

    @property
    def features(self) -> QueryFeatures:
        """Structural features of the fragment."""
        return analyze_query(self.query)


@dataclass
class FragmentPlan:
    """A complete vertical fragmentation ``Q → Q1 .. Qj, Qδ``.

    ``fragments`` are ordered bottom-up: the first fragment runs closest to
    the sensor, the last one produces the relation the remainder consumes.
    """

    original_query: ast.Query
    fragments: List[QueryFragment] = field(default_factory=list)
    #: Description of the remainder Qδ executed at the cloud.  For pure SQL
    #: workloads the remainder is usually a pass-through (the whole query was
    #: pushed down); for R workloads it is the surrounding ML call.
    remainder_description: str = "pass-through"
    #: Optional remainder query executed at the cloud over the shipped data.
    #: ``None`` means pass-through.  The cloud-only baseline plan sets this to
    #: the original query so that all work happens at the top.
    remainder_query: Optional[ast.Query] = None
    #: Relation name under which the shipped data is registered at the cloud
    #: before the remainder query runs.
    remainder_input_alias: str = "d"
    #: Name of the relation that finally leaves the apartment (d').
    result_name: str = "d_prime"

    @property
    def original_sql(self) -> str:
        """The original query as SQL text."""
        return render(self.original_query)

    @property
    def pushed_down_levels(self) -> List[CapabilityLevel]:
        """Levels used by the pushed-down fragments (bottom-up)."""
        return [fragment.level for fragment in self.fragments]

    def fragments_at(self, level: CapabilityLevel) -> List[QueryFragment]:
        """All fragments requiring the given level."""
        return [fragment for fragment in self.fragments if fragment.level == level]

    @property
    def deepest_pushdown(self) -> Optional[CapabilityLevel]:
        """The least powerful level that received work (None when empty)."""
        if not self.fragments:
            return None
        return max(self.pushed_down_levels, key=int)

    def describe(self) -> List[Dict[str, str]]:
        """Tabular description of the plan (one row per fragment)."""
        rows = []
        for fragment in self.fragments:
            rows.append(
                {
                    "fragment": fragment.name,
                    "level": fragment.level.short_name,
                    "node": fragment.assigned_node or "",
                    "input": fragment.input_name,
                    "sql": fragment.sql,
                    "description": fragment.description,
                }
            )
        rows.append(
            {
                "fragment": "Q_delta",
                "level": CapabilityLevel.E1_CLOUD.short_name,
                "node": "cloud",
                "input": self.fragments[-1].name if self.fragments else "d",
                "sql": "",
                "description": self.remainder_description,
            }
        )
        return rows

    def pretty(self) -> str:
        """Multi-line, paper-style listing of the staged queries."""
        lines = ["Vertical fragmentation plan:"]
        for fragment in self.fragments:
            node = f" @ {fragment.assigned_node}" if fragment.assigned_node else ""
            estimate = (
                f" (est. {fragment.estimated_rows} rows)"
                if fragment.estimated_rows is not None
                else ""
            )
            lines.append(
                f"  [{fragment.level.short_name}{node}] {fragment.name}:{estimate}"
            )
            lines.append(f"      {fragment.sql}")
            if fragment.description:
                lines.append(f"      -- {fragment.description}")
        lines.append(f"  [E1 @ cloud] Q_delta: {self.remainder_description}")
        return "\n".join(lines)
