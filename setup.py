"""Setuptools shim.

The offline environment has neither network access nor the ``wheel`` package,
so PEP 517 editable installs cannot build an editable wheel.  This shim lets
``pip install -e . --no-build-isolation`` (or ``--no-use-pep517``) fall back to
the classic ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
