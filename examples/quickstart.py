#!/usr/bin/env python3
"""Quickstart: rewrite and execute one query under the Figure 4 policy.

The script simulates a short meeting in the Smart Meeting Room, loads the
integrated sensor relation ``d`` onto the sensor node and asks the PArADISE
processor to answer the activity-recognition query of the paper's running
example.  It prints the rewritten query, the fragment plan, the per-node
execution trace and how much data actually left the apartment.

Run with::

    python examples/quickstart.py
"""

from repro import ParadiseProcessor, SmartMeetingRoom, figure4_policy
from repro.sensors.scenario import quantize_positions


def main() -> None:
    # 1. Simulate the smart environment (substitute for the MuSAMA lab data).
    room = SmartMeetingRoom(person_count=4, seed=42)
    data = room.generate(duration_seconds=120.0)
    integrated = quantize_positions(data.integrated, cell_size=0.5)
    print(f"Simulated {len(integrated)} position readings from {room.person_count} people.\n")

    # 2. Build the processor with the user's privacy policy (Figure 4).
    policy = figure4_policy()
    processor = ParadiseProcessor(policy, schema=integrated.schema)
    processor.load_data(integrated)

    # 3. The assistive system asks for raw positions ... which the policy does
    #    not allow.  PArADISE rewrites the query instead of rejecting it.
    query = "SELECT x, y, z, t FROM d"
    result = processor.process(query, module_id="ActionFilter")

    print("original query:  ", query)
    print("rewritten query: ", result.rewrite.sql)
    print()
    print(result.plan.pretty())
    print()
    print(result.summary())

    print("\nFirst rows of the result d' the cloud receives:")
    for row in result.result.head(5):
        print("  ", row)


if __name__ == "__main__":
    main()
