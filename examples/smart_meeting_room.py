#!/usr/bin/env python3
"""Smart Meeting Room scenario: the full Section 4.2 walk-through.

This example reproduces the use case of the paper step by step:

1. an R analysis script (a Kalman-filter-style activity classifier) embeds a
   SQL query over the integrated sensor data ``d``,
2. the SQLable pattern is extracted from the R code,
3. the query is rewritten against the Figure 4 policy,
4. the rewritten query is vertically fragmented onto sensor, appliance, media
   center and apartment PC,
5. the fragments execute bottom-up; only the reduced result ``d'`` reaches the
   cloud, where the residual R call runs.

Run with::

    python examples/smart_meeting_room.py
"""

from repro import ParadiseProcessor, SmartMeetingRoom, figure4_policy
from repro.fragment import Topology
from repro.rlang import extract_sql_from_r
from repro.sensors.scenario import quantize_positions

#: The analysis code of Section 4.2 (excerpt of a Kalman filter).
PAPER_R_CODE = """
filterByClass(sqldf(
  SELECT regr_intercept(y, x)
  OVER (PARTITION BY z ORDER BY t)
  FROM (SELECT x, y, z, t
        FROM d)
), action='walk', do.plot=F)
"""


def main() -> None:
    print("=== Step 1: the R analysis script sent by the cloud ===")
    print(PAPER_R_CODE)

    print("=== Step 2: SQLable-pattern extraction ===")
    extraction = extract_sql_from_r(PAPER_R_CODE)
    print("embedded SQL:   ", extraction.sql)
    print("residual R call:", extraction.residual_call("d'"))
    print()

    print("=== Step 3-5: PArADISE processing ===")
    room = SmartMeetingRoom(person_count=6, seed=7)
    data = room.generate(duration_seconds=180.0)
    integrated = quantize_positions(data.integrated, cell_size=0.5)

    processor = ParadiseProcessor(
        figure4_policy(),
        topology=Topology.default_chain(appliance_count=2),
        schema=integrated.schema,
    )
    processor.load_data(integrated)
    processor.load_device_tables(data.device_tables)

    result = processor.process_r(PAPER_R_CODE, module_id="ActionFilter")
    print(result.plan.pretty())
    print()
    print(result.summary())

    print("\n=== Comparison with the no-privacy / no-pushdown baseline ===")
    baseline = processor.process(
        extraction.sql,
        module_id="ActionFilter",
        pushdown=False,
        apply_rewriting=False,
        anonymize=False,
    )
    print(f"baseline: {baseline.rows_leaving_apartment} rows leave the apartment")
    print(f"PArADISE: {result.rows_leaving_apartment} rows leave the apartment")
    if result.rows_leaving_apartment:
        print(f"reduction factor: x{baseline.rows_leaving_apartment / result.rows_leaving_apartment:.1f}")
    else:
        print("reduction factor: all raw rows stay inside the apartment")


if __name__ == "__main__":
    main()
