#!/usr/bin/env python3
"""The "Poodle" use case: comparing the plain and the PArADISE-based service.

Section 4.2 motivates the approach with a fictional provider, Poodle, that
sells an assistance service cheaply because it wants to monetise the derived
personal profiles.  This example quantifies what each variant of the service
learns:

* **plain service** — the original query runs in Poodle's cloud over the raw
  data (no rewriting, no pushdown, no anonymization),
* **PArADISE service** — the same query is rewritten against the resident's
  policy, fragmented, and only the anonymized result leaves the apartment.

For both variants the script reports the data volume leaving the apartment,
the information loss (Direct Distance and KL divergence) of what Poodle
receives relative to the raw data, and whether individual positions can be
re-identified.

Run with::

    python examples/poodle_use_case.py
"""

from repro import ParadiseProcessor, SmartMeetingRoom, restrictive_policy
from repro.anonymize import Anonymizer, detect_quasi_identifiers
from repro.metrics import information_loss_summary
from repro.sensors.scenario import quantize_positions


def main() -> None:
    room = SmartMeetingRoom(person_count=5, seed=11)
    data = room.generate(duration_seconds=240.0)
    integrated = quantize_positions(data.integrated, cell_size=0.5)

    query = "SELECT person_id, x, y, z, t, activity FROM d"

    # ------------------------------------------------------------------
    # Variant 1: the plain Poodle service.
    # ------------------------------------------------------------------
    plain = ParadiseProcessor(restrictive_policy(), schema=integrated.schema)
    plain.load_data(integrated)
    plain_result = plain.process(
        query, module_id="ActionFilter",
        apply_rewriting=False, pushdown=False, anonymize=False,
    )
    print("=== Plain service (no privacy protection) ===")
    print(f"rows leaving the apartment: {plain_result.rows_leaving_apartment}")
    report = detect_quasi_identifiers(plain_result.result)
    print(f"identifying columns received by the provider: {report.identifying}")
    print(f"quasi-identifiers received: {report.quasi_identifiers}\n")

    # ------------------------------------------------------------------
    # Variant 2: the PArADISE-based service.
    # ------------------------------------------------------------------
    paradise = ParadiseProcessor(
        restrictive_policy(),
        schema=integrated.schema,
        anonymizer=Anonymizer(algorithm="k_anonymity", k=5),
    )
    paradise.load_data(integrated)
    paradise_result = paradise.process(query, module_id="ActionFilter")
    print("=== PArADISE-based service ===")
    print(paradise_result.summary())

    # ------------------------------------------------------------------
    # What does Poodle learn in each case?
    # ------------------------------------------------------------------
    print("\n=== Information received by the provider ===")
    raw = plain_result.result
    received = paradise_result.result
    shared_columns = [name for name in raw.schema.names if name in received.schema]
    if shared_columns:
        loss = information_loss_summary(raw, received, columns=shared_columns)
        print(f"columns still comparable: {shared_columns}")
        print(f"direct distance ratio: {loss.direct_distance_ratio:.3f} (1.0 = everything changed)")
        print(f"mean KL divergence:   {loss.kl_divergence_mean:.3f}")
    hidden = [name for name in raw.schema.names if name not in received.schema]
    print(f"columns the provider no longer sees at all: {hidden}")
    print(
        f"data leaving the apartment: {plain_result.rows_leaving_apartment} rows (plain) vs "
        f"{paradise_result.rows_leaving_apartment} rows (PArADISE)"
    )


if __name__ == "__main__":
    main()
