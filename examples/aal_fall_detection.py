#!/usr/bin/env python3
"""AAL apartment: fall detection under a generated privacy policy.

The Ambient Assisted Living scenario of the paper's introduction: an elderly
resident lives alone, the apartment detects falls, but the resident does not
want the service provider to learn a full movement profile.  This example

1. simulates apartment life including fall events,
2. *generates* a privacy policy automatically from the sensor schema (the
   "automatic generation of privacy settings" module of Figure 2),
3. runs a fall-detection query through PArADISE,
4. shows that falls are still detectable from the reduced data ``d'`` while
   the raw trajectory never leaves the apartment.

Run with::

    python examples/aal_fall_detection.py
"""

from repro import ParadiseProcessor
from repro.anonymize import Anonymizer
from repro.policy import PolicyBuilder
from repro.policy.generator import PolicyGenerator
from repro.policy.xml_io import policy_to_xml
from repro.sensors import AalApartment
from repro.sensors.scenario import fall_events, quantize_positions


def main() -> None:
    apartment = AalApartment(person_count=1, seed=3)
    data = apartment.generate(duration_seconds=600.0)
    integrated = quantize_positions(data.integrated, cell_size=1.0)
    truth = fall_events(data)
    print(f"Simulated {len(integrated)} readings; ground truth contains {len(truth)} fall events.\n")

    print("=== Automatically generated policy (from the sensor schema) ===")
    generated = PolicyGenerator().generate(integrated.schema, module_id="FallDetector")
    print(policy_to_xml(generated))
    print()

    # The fall detector needs the height values themselves (not only their
    # average), so the resident grants a slightly wider hand-written policy:
    # z may be revealed but only below normal standing height, and only
    # together with coarse positions.
    policy = (
        PolicyBuilder(owner="resident")
        .module("FallDetector")
        .deny("person_id")
        .deny("activity")
        .allow("x")
        .allow("y")
        .allow("z", condition="z < 1.0")
        .allow("t")
        .allow("valid", condition="valid = TRUE")
        .build()
    )

    # The detector needs usable timestamps and heights, so the postprocessor
    # perturbs values with Laplace noise instead of coarsening them to ranges.
    processor = ParadiseProcessor(
        policy,
        schema=integrated.schema,
        anonymizer=Anonymizer(algorithm="differential_privacy", epsilon=5.0, seed=1),
    )
    processor.load_data(integrated)

    # Fall detection heuristic: a minute-window in which the tag height stays
    # below 0.6 m indicates a person on the floor.
    query = """
        SELECT t, x, y, z
        FROM (SELECT x, y, z, t, valid FROM d)
        WHERE z < 0.6
        ORDER BY t
    """
    result = processor.process(query, module_id="FallDetector")
    print("=== PArADISE processing ===")
    print(result.summary())

    detected_times = sorted(
        {
            round(float(row["t"]))
            for row in result.result.rows
            if isinstance(row.get("t"), (int, float))
        }
    )
    print(f"\nLow-height readings (potential falls) at t ≈ {detected_times[:20]} ...")

    hits = 0
    for event in truth:
        if any(event["start"] - 2 <= t <= event["end"] + 5 for t in detected_times):
            hits += 1
    if truth:
        print(f"Detected {hits}/{len(truth)} ground-truth falls from the reduced data d'.")
    print(f"Raw rows: {result.raw_input_rows}, rows leaving the apartment: {result.rows_leaving_apartment}.")


if __name__ == "__main__":
    main()
