"""Shared workload builders for the benchmark harness.

Every benchmark regenerates one artefact of the paper (see DESIGN.md's
experiment index).  The paper itself reports no quantitative measurements —
its table and figures are architectural — so each benchmark (a) reconstructs
the artefact programmatically and (b) measures the quantities the paper claims
qualitatively: data reduction towards the cloud, operator placement, rewriting
overhead and the privacy/utility trade-off of the postprocessor.
"""

from __future__ import annotations

import random
import statistics
import time
from typing import Any, Callable, Dict, List, Optional

from repro.engine.schema import Schema
from repro.engine.table import Relation
from repro.policy.presets import figure4_policy, restrictive_policy
from repro.processor.paradise import ParadiseProcessor
from repro.sensors.scenario import INTEGRATED_SCHEMA

#: The paper's analysis query (Section 4.2) as plain SQL.
PAPER_SQL = (
    "SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) "
    "FROM (SELECT x, y, z, t FROM d)"
)

#: The R analysis call wrapping the SQL island.
PAPER_R_CODE = (
    "filterByClass(sqldf(" + PAPER_SQL + "), action='walk', do.plot=F)"
)


def synthetic_sensor_relation(rows: int, seed: int = 0, grid: float = 1.0) -> Relation:
    """Zone-quantised position readings shaped like the integrated relation d."""
    rng = random.Random(seed)
    data = []
    for index in range(rows):
        x = round(round(rng.uniform(0, 8) / grid) * grid, 3)
        y = round(round(rng.uniform(0, 6) / grid) * grid, 3)
        data.append(
            {
                "person_id": rng.randint(1, 6),
                "x": x,
                "y": y,
                "z": round(rng.uniform(0.1, 1.9), 3),
                "t": round(index * 0.1, 3),
                "valid": rng.random() > 0.05,
                "activity": rng.choice(["walk", "sit", "stand", "present"]),
            }
        )
    return Relation(schema=INTEGRATED_SCHEMA, rows=data, name="d")


def build_processor(rows: int, policy=None, seed: int = 0, **kwargs) -> ParadiseProcessor:
    """A ready-to-run processor with ``rows`` synthetic readings loaded."""
    relation = synthetic_sensor_relation(rows, seed=seed)
    processor = ParadiseProcessor(
        policy or figure4_policy(), schema=INTEGRATED_SCHEMA, **kwargs
    )
    processor.load_data(relation)
    return processor


def percentile(samples: List[float], q: float) -> float:
    """Linear-interpolated percentile of a sample list (q in [0, 1])."""
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def summarize_samples(samples: List[float], rows: Optional[int] = None) -> Dict[str, Any]:
    """Median/p90/min/max (seconds) plus rows/sec when a row count is given."""
    summary: Dict[str, Any] = {
        "runs": len(samples),
        "median_s": statistics.median(samples),
        "p90_s": percentile(samples, 0.9),
        "min_s": min(samples),
        "max_s": max(samples),
    }
    if rows is not None:
        summary["rows"] = rows
        summary["rows_per_s"] = rows / summary["median_s"] if summary["median_s"] else None
    return summary


def timed_run(
    fn: Callable[[], Any],
    repeats: int = 5,
    warmup: int = 1,
    rows: Optional[int] = None,
    on_result: Optional[Callable[[Any], None]] = None,
) -> Dict[str, Any]:
    """Time ``fn`` with wall-clock repeats and return a sample summary.

    Args:
        fn: The workload; called ``warmup + repeats`` times.
        repeats: Measured runs (median/p90 are computed over these).
        warmup: Untimed runs to populate parse/compile caches first.
        rows: Input row count, for rows/sec reporting.
        on_result: Optional hook receiving each measured run's return value
            (used to collect engine-only timings from processing results).
    """
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - started)
        if on_result is not None:
            on_result(result)
    return summarize_samples(samples, rows=rows)


def print_table(title: str, rows, columns) -> None:
    """Print a small fixed-width results table (shown with ``pytest -s``)."""
    print(f"\n=== {title} ===")
    widths = {
        column: max(len(column), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    print(header)
    print("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        print(" | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns))
