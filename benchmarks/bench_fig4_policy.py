"""Experiment F4 — Figure 4: the privacy policy of the running example.

Figure 4 prints the XML policy that drives the use case.  This benchmark
(a) parses and re-serialises exactly that policy and checks the round trip,
(b) measures parsing/serialisation/validation latency and (c) measures how the
rewriting cost grows with the number of attribute rules in the policy.
"""

from __future__ import annotations

import pytest

from benchmarks.common import PAPER_SQL, print_table
from repro.policy import PolicyBuilder, parse_policy_xml, policy_to_xml
from repro.policy.presets import FIGURE4_POLICY_XML, figure4_policy
from repro.policy.validation import has_errors, validate_policy
from repro.rewrite import QueryRewriter
from repro.sql.parser import parse


def test_fig4_policy_roundtrip_report():
    policy = parse_policy_xml(FIGURE4_POLICY_XML)
    module = policy.module("ActionFilter")
    rows = []
    for rule in module.attributes.values():
        rows.append(
            {
                "attribute": rule.name,
                "allow": rule.allow,
                "conditions": "; ".join(rule.conditions) or "-",
                "aggregation": (
                    f"{rule.aggregation.aggregation_type} GROUP BY "
                    f"{', '.join(rule.aggregation.group_by)} HAVING {rule.aggregation.having}"
                    if rule.aggregation
                    else "-"
                ),
            }
        )
    print_table("Figure 4 — parsed policy", rows, ["attribute", "allow", "conditions", "aggregation"])
    assert not has_errors(validate_policy(policy))
    reparsed = parse_policy_xml(policy_to_xml(policy))
    assert set(reparsed.module("ActionFilter").attributes) == set(module.attributes)


@pytest.mark.benchmark(group="fig4-policy")
def test_bench_policy_parsing(benchmark):
    policy = benchmark(parse_policy_xml, FIGURE4_POLICY_XML)
    assert policy.has_module("ActionFilter")


@pytest.mark.benchmark(group="fig4-policy")
def test_bench_policy_serialisation(benchmark):
    policy = figure4_policy()
    xml = benchmark(policy_to_xml, policy)
    assert "ActionFilter" in xml


@pytest.mark.benchmark(group="fig4-policy")
def test_bench_policy_validation(benchmark):
    policy = figure4_policy()
    issues = benchmark(validate_policy, policy)
    assert not has_errors(issues)


def _policy_with_rules(count: int):
    builder = PolicyBuilder().module("ActionFilter")
    builder.allow("x", condition="x > y").allow("y").allow("t")
    builder.allow("z", condition="z < 2", aggregation="AVG", group_by=["x", "y"], having="SUM(z) > 100")
    for index in range(count):
        builder.allow(f"extra_{index}", condition=f"extra_{index} > {index}")
    return builder.build()


@pytest.mark.benchmark(group="fig4-rewrite-scaling")
@pytest.mark.parametrize("rule_count", [4, 32, 128])
def test_bench_rewrite_scales_with_policy_size(benchmark, rule_count):
    policy = _policy_with_rules(rule_count)
    rewriter = QueryRewriter(policy)
    query = parse(PAPER_SQL)
    result = benchmark(rewriter.rewrite, query, "ActionFilter")
    assert result.compliant
