"""Experiment RT — parallel runtime scaling over tree topologies.

Measures what the new :mod:`repro.runtime` subsystem buys:

1. **Sensor fan-out.** The same workload on ``smart_home_tree(n)`` trees for
   growing ``n``, executed serially (the oracle walks every leaf chunk one
   after another) vs. in parallel (the DAG fans the leaf stage out and lifts
   distributive fragments per appliance).  Node speeds follow Table 1 via a
   :class:`~repro.runtime.cost.CostModel` (a sensor is 0.1x, the PC 10x),
   charged identically on both paths, so the reported speedup is pure
   wall-clock overlap.
2. **Concurrent sessions.** Many independent user queries against one shared
   8-sensor tree: submitted through the
   :class:`~repro.runtime.session.SessionFrontEnd` vs. processed one at a
   time.  Sessions contend for the same per-node worker slots, so this
   measures honest pipeline overlap, not free parallelism — all queries scan
   all sensors, which bounds throughput by sensor capacity.

``python benchmarks/bench_runtime_scaling.py`` writes ``BENCH_runtime.json``;
``benchmarks/run_all.py`` invokes the same entry point in quick mode.  The
pytest functions below run tiny configurations so the quick suite doubles as
a smoke test.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.common import (  # noqa: E402
    PAPER_SQL,
    print_table,
    summarize_samples,
    synthetic_sensor_relation,
)
from repro.fragment.topology import Topology  # noqa: E402
from repro.policy.presets import figure4_policy  # noqa: E402
from repro.processor.paradise import ParadiseProcessor  # noqa: E402
from repro.runtime import CostModel, QueryRequest, SessionFrontEnd  # noqa: E402
from repro.sensors.scenario import INTEGRATED_SCHEMA  # noqa: E402

#: Table-1-shaped simulated costs (see repro.runtime.cost); both execution
#: paths charge the same operations, so speedups measure overlap only.
DEFAULT_COST = CostModel(seconds_per_row=2e-5, seconds_per_kb=1e-5)

FANOUTS = (1, 2, 4, 8, 16)
SESSION_COUNTS = (1, 4, 8)


def build_tree_processor(
    rows: int, n_sensors: int, cost_model: Optional[CostModel] = None
) -> ParadiseProcessor:
    topology = (
        Topology.smart_home_tree(n_sensors=n_sensors, sensors_per_appliance=4)
        if n_sensors > 1
        else Topology.default_chain()
    )
    processor = ParadiseProcessor(
        figure4_policy(),
        topology=topology,
        schema=INTEGRATED_SCHEMA,
        cost_model=cost_model,
    )
    processor.load_data(synthetic_sensor_relation(rows))
    return processor


def _time_mode(processor: ParadiseProcessor, mode: str, repeats: int) -> List[float]:
    samples = []
    processor.process(PAPER_SQL, "ActionFilter", execution=mode)  # warmup
    for _ in range(repeats):
        started = time.perf_counter()
        result = processor.process(PAPER_SQL, "ActionFilter", execution=mode)
        samples.append(time.perf_counter() - started)
        assert result.admitted
    return samples


def measure_fanout(
    rows: int, repeats: int, cost_model: CostModel, fanouts=FANOUTS
) -> List[Dict[str, Any]]:
    """Serial vs parallel wall clock per sensor fan-out."""
    entries: List[Dict[str, Any]] = []
    for n_sensors in fanouts:
        processor = build_tree_processor(rows, n_sensors, cost_model=cost_model)
        serial = _time_mode(processor, "serial", repeats)
        parallel = _time_mode(processor, "parallel", repeats)
        last = processor.process(PAPER_SQL, "ActionFilter", execution="parallel")
        entry = {
            "n_sensors": n_sensors,
            "rows": rows,
            "serial": summarize_samples(serial, rows=rows),
            "parallel": summarize_samples(parallel, rows=rows),
            "speedup_median": round(
                statistics.median(serial) / statistics.median(parallel), 3
            ),
            "partition_width": last.runtime.partition_width,
            "dag_tasks": last.runtime.task_count,
            "overlap_factor": round(last.runtime.overlap_factor, 3),
        }
        entries.append(entry)
        print(
            f"fanout {n_sensors:>2}: serial {statistics.median(serial) * 1e3:8.1f}ms  "
            f"parallel {statistics.median(parallel) * 1e3:8.1f}ms  "
            f"speedup {entry['speedup_median']:.2f}x  "
            f"({entry['dag_tasks']} tasks)"
        )
    return entries


def measure_sessions(
    rows: int, repeats: int, cost_model: CostModel, session_counts=SESSION_COUNTS
) -> List[Dict[str, Any]]:
    """Concurrent admission vs one-at-a-time processing on a shared tree."""
    entries: List[Dict[str, Any]] = []
    processor = build_tree_processor(rows, 8, cost_model=cost_model)
    processor.process(PAPER_SQL, "ActionFilter", execution="parallel")  # warmup
    for queries in session_counts:
        requests = [
            QueryRequest(query=PAPER_SQL, module_id="ActionFilter")
            for _ in range(queries)
        ]
        sequential_samples: List[float] = []
        concurrent_samples: List[float] = []
        serial_samples: List[float] = []
        for _ in range(repeats):
            started = time.perf_counter()
            for request in requests:
                processor.process(
                    request.query, request.module_id, execution="serial"
                )
            serial_samples.append(time.perf_counter() - started)

            started = time.perf_counter()
            for request in requests:
                processor.process(
                    request.query, request.module_id, execution="parallel"
                )
            sequential_samples.append(time.perf_counter() - started)

            with SessionFrontEnd(processor, max_concurrent=8) as front_end:
                started = time.perf_counter()
                results = front_end.run_batch(requests)
                concurrent_samples.append(time.perf_counter() - started)
            assert all(result.admitted for result in results)
        entry = {
            "queries": queries,
            "rows": rows,
            "serial_one_at_a_time": summarize_samples(serial_samples),
            "parallel_one_at_a_time": summarize_samples(sequential_samples),
            "concurrent_sessions": summarize_samples(concurrent_samples),
            "pipeline_speedup_median": round(
                statistics.median(sequential_samples)
                / statistics.median(concurrent_samples),
                3,
            ),
            "vs_serial_speedup_median": round(
                statistics.median(serial_samples)
                / statistics.median(concurrent_samples),
                3,
            ),
        }
        entries.append(entry)
        print(
            f"sessions {queries:>2}: serial-seq {statistics.median(serial_samples) * 1e3:8.1f}ms  "
            f"parallel-seq {statistics.median(sequential_samples) * 1e3:8.1f}ms  "
            f"concurrent {statistics.median(concurrent_samples) * 1e3:8.1f}ms  "
            f"(x{entry['vs_serial_speedup_median']:.2f} vs serial)"
        )
    return entries


def run_runtime_scaling(
    rows: int = 2000,
    repeats: int = 3,
    out: Optional[Path] = None,
    cost_model: CostModel = DEFAULT_COST,
    fanouts=FANOUTS,
    session_counts=SESSION_COUNTS,
) -> Dict[str, Any]:
    """Run all runtime measurements and (optionally) write ``BENCH_runtime.json``."""
    from benchmarks.bench_groupby_pushdown import measure_groupby_pushdown

    report: Dict[str, Any] = {
        "generated_by": "benchmarks/bench_runtime_scaling.py",
        "python": sys.version.split()[0],
        "rows": rows,
        "repeats": repeats,
        "cost_model": {
            "seconds_per_row": cost_model.seconds_per_row,
            "seconds_per_kb": cost_model.seconds_per_kb,
        },
        "metric_note": "median/p90 wall seconds; both modes charge identical "
        "simulated node/link costs (Table 1 relative speeds), so speedups "
        "measure scheduling overlap only",
        "fanout": measure_fanout(rows, repeats, cost_model, fanouts=fanouts),
        "sessions": measure_sessions(
            rows, repeats, cost_model, session_counts=session_counts
        ),
        # Distributed partial aggregation on the GROUP BY workload: its own
        # link-bound cost model (see bench_groupby_pushdown.DEFAULT_COST),
        # serial vs global-merge vs partial, wall clock and bytes per hop.
        "groupby_pushdown": measure_groupby_pushdown(rows=rows, repeats=repeats),
    }
    # Fault-tolerance recovery overhead (PR 6): seeded random node kills at
    # 8/16 sensors, each recovered run differentially checked in-loop.
    from benchmarks.bench_chaos import run_chaos

    report["chaos"] = run_chaos(
        rows=min(rows, 1200), repeats=max(2, repeats - 1), cost_model=cost_model
    )
    # Process-backend compute overlap (PR 8): cost model disabled, thread
    # baseline vs 1/2/4 process workers, differential-checked in-loop.  Row
    # count is fixed independently of ``rows`` so engine compute dominates
    # the wire/IPC overhead being amortized.
    from benchmarks.bench_multicore import run_multicore

    report["multicore"] = run_multicore(repeats=max(2, repeats))
    # Incremental standing queries (PR 10): delta-maintained aggregate trees
    # vs re-execute-per-refresh, differential-checked in-loop.  Row count is
    # fixed independently of ``rows`` so the from-scratch baseline reflects a
    # realistically accumulated stream.
    from benchmarks.bench_standing import run_standing

    report["standing"] = run_standing(refreshes=max(3, repeats))
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")
    return report


# ---------------------------------------------------------------------------
# pytest smoke benchmarks (tiny configs; run in the quick suite)
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="runtime-scaling")
def test_bench_parallel_tree_execution(benchmark):
    processor = build_tree_processor(600, 8, cost_model=CostModel(seconds_per_row=2e-5))
    result = benchmark.pedantic(
        processor.process,
        args=(PAPER_SQL, "ActionFilter"),
        kwargs={"execution": "parallel"},
        rounds=2,
        iterations=1,
    )
    assert result.admitted
    assert result.runtime is not None
    assert result.runtime.partition_width == 8


def test_runtime_speedup_on_eight_sensor_tree():
    """The acceptance bar: >= 1.5x over serial on a >= 8-sensor tree."""
    entries = measure_fanout(
        600, repeats=2, cost_model=CostModel(seconds_per_row=2e-5), fanouts=(8,)
    )
    assert entries[0]["speedup_median"] >= 1.5


def test_sessions_front_end_smoke():
    entries = measure_sessions(
        400, repeats=1, cost_model=CostModel(seconds_per_row=1e-5), session_counts=(4,)
    )
    assert entries[0]["concurrent_sessions"]["runs"] == 1
    assert entries[0]["vs_serial_speedup_median"] > 1.0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=2000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_runtime.json"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller rows/repeats for CI"
    )
    args = parser.parse_args(argv)
    rows = 800 if args.quick else args.rows
    repeats = 2 if args.quick else args.repeats
    report = run_runtime_scaling(rows=rows, repeats=repeats, out=args.out)
    eight = next(e for e in report["fanout"] if e["n_sensors"] >= 8)
    print(
        f"8-sensor speedup: {eight['speedup_median']:.2f}x "
        f"({'meets' if eight['speedup_median'] >= 1.5 else 'MISSES'} the 1.5x bar)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
