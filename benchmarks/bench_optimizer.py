"""Experiment CO — statistics-driven cost-based optimization.

Measures the three plan choices the optimizer makes from maintained column
statistics, each against the ``optimizer=False`` ablation (today's purely
syntactic choices).  Results are differential-checked in-loop: every
workload must return byte-identical relations with the optimizer on and
off — the optimizer moves work, never answers.

* **skewed_conjuncts** — a WHERE clause written worst-first: an expensive
  unselective LIKE, an unselective range, and a highly selective equality
  last.  Selectivity-ordered scanning evaluates the equality first, so the
  expensive conjuncts see a fraction of the rows.
* **build_side_join** — a small relation joined against a large one.  The
  syntactic plan always hashes the right (large) side; the cost-based plan
  builds over the smaller estimated side and probes with the big one.
* **adaptive_groupby** — a high-cardinality GROUP BY through the parallel
  runtime: the adaptive placement rule estimates state bytes per leaf from
  distinct-key stats and observed packed state sizes instead of the fixed
  0.75 distinct-share ratio.

``python benchmarks/bench_optimizer.py`` runs standalone;
``benchmarks/run_all.py`` embeds the result as the ``optimizer`` section
of ``BENCH_engine.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.engine.database import Database  # noqa: E402
from repro.engine.stats import optimizer_mode, optimizer_stats  # noqa: E402


def _median_seconds(fn, repeats: int) -> float:
    fn()  # warmup: parse/compile/plan caches
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def build_filter_database(rows: int, seed: int = 0) -> Database:
    """Readings with a very selective device id and noisy text labels."""
    rng = random.Random(seed)
    data = [
        {
            "id": index,
            "device": rng.randint(1, 1000),
            "value": round(rng.uniform(0.0, 100.0), 3),
            "label": rng.choice(["walk", "sit", "stand", "present", "away"]),
        }
        for index in range(rows)
    ]
    database = Database(name="bench_optimizer")
    database.load_rows("d", data)
    return database


def build_join_database(small: int, large: int, seed: int = 0) -> Database:
    rng = random.Random(seed)
    database = Database(name="bench_optimizer_join")
    database.load_rows(
        "s",
        [{"device": index, "label": f"dev{index}"} for index in range(small)],
    )
    database.load_rows(
        "d",
        [
            {
                "id": index,
                "device": rng.randint(0, small - 1),
                "value": round(rng.uniform(0.0, 100.0), 3),
            }
            for index in range(large)
        ],
    )
    return database


#: Conjuncts deliberately written worst-first: the planner must reorder.
SKEWED_SQL = (
    "SELECT id, value FROM d "
    "WHERE label LIKE '%a%' AND value >= 0.0 AND device = 7"
)

JOIN_SQL = (
    "SELECT s.label, d.value FROM s JOIN d ON s.device = d.device "
    "WHERE d.value > 99.5"
)

GROUPBY_SQL = "SELECT person_id, t, COUNT(*) AS n FROM d GROUP BY person_id, t"


def _differential(database: Database, sql: str) -> bool:
    with optimizer_mode(True):
        optimized = database.query(sql)
    with optimizer_mode(False):
        ablated = database.query(sql)
    return (
        optimized.schema.names == ablated.schema.names
        and optimized.to_dicts() == ablated.to_dicts()
    )


def measure_skewed_conjuncts(rows: int, repeats: int = 3) -> Dict[str, Any]:
    database = build_filter_database(rows)
    identical = _differential(database, SKEWED_SQL)
    before = optimizer_stats.conjunct_reorders
    with optimizer_mode(True):
        on_median = _median_seconds(lambda: database.query(SKEWED_SQL), repeats)
    reorders = optimizer_stats.conjunct_reorders - before

    def run_off() -> None:
        with optimizer_mode(False):
            database.query(SKEWED_SQL)

    off_median = _median_seconds(run_off, repeats)
    return {
        "sql": SKEWED_SQL,
        "rows": rows,
        "identical_to_ablation": identical,
        "conjunct_reorders": reorders,
        "median_s": {"optimizer": round(on_median, 6), "ablation": round(off_median, 6)},
        "speedup_median": round(off_median / on_median, 3) if on_median else None,
    }


def measure_build_side_join(small: int, large: int, repeats: int = 3) -> Dict[str, Any]:
    database = build_join_database(small, large)
    identical = _differential(database, JOIN_SQL)
    before = optimizer_stats.build_side_flips
    with optimizer_mode(True):
        on_median = _median_seconds(lambda: database.query(JOIN_SQL), repeats)
    flips = optimizer_stats.build_side_flips - before

    def run_off() -> None:
        with optimizer_mode(False):
            database.query(JOIN_SQL)

    off_median = _median_seconds(run_off, repeats)
    return {
        "sql": JOIN_SQL,
        "small_rows": small,
        "large_rows": large,
        "identical_to_ablation": identical,
        "build_side_flips": flips,
        "flipped_to_left_build": flips > 0,
        "median_s": {"optimizer": round(on_median, 6), "ablation": round(off_median, 6)},
        "speedup_median": round(off_median / on_median, 3) if on_median else None,
    }


def measure_adaptive_groupby(rows: int, repeats: int = 3) -> Dict[str, Any]:
    """High-cardinality GROUP BY through the parallel runtime."""
    from benchmarks.common import build_processor
    from repro.fragment.topology import Topology

    results: Dict[bool, Any] = {}
    medians: Dict[bool, float] = {}
    decisions: Dict[str, int] = {}
    for enabled in (True, False):
        # A real sensor tree: partial aggregation needs partitioned leaves
        # for the placement decision to exist at all.
        processor = build_processor(
            rows,
            execution="parallel",
            optimizer=enabled,
            topology=Topology.smart_home_tree(n_sensors=8, sensors_per_appliance=4),
        )
        before = (
            optimizer_stats.adaptive_partial,
            optimizer_stats.adaptive_fallback,
        )

        def run() -> None:
            results[enabled] = processor.process(
                GROUPBY_SQL, "ActionFilter", apply_rewriting=False, anonymize=False
            ).result

        medians[enabled] = _median_seconds(run, repeats)
        if enabled:
            decisions = {
                "adaptive_partial": optimizer_stats.adaptive_partial - before[0],
                "adaptive_fallback": optimizer_stats.adaptive_fallback - before[1],
            }
    identical = (
        results[True].schema.names == results[False].schema.names
        and results[True].to_dicts() == results[False].to_dicts()
    )
    return {
        "sql": GROUPBY_SQL,
        "rows": rows,
        "identical_to_ablation": identical,
        "decisions": decisions,
        "median_s": {
            "optimizer": round(medians[True], 6),
            "ablation": round(medians[False], 6),
        },
        "speedup_median": round(medians[False] / medians[True], 3)
        if medians[True]
        else None,
    }


def run_optimizer(rows: int = 100_000, repeats: int = 3) -> Dict[str, Any]:
    """The ``optimizer`` section of ``BENCH_engine.json``."""
    section: Dict[str, Any] = {
        "baseline_note": "ablation = optimizer_mode(False): purely syntactic "
        "plan choices (written conjunct order, right-side hash build, fixed "
        "0.75 partial-aggregation ratio); every workload is differential-"
        "checked against it in-loop",
        "skewed_conjuncts": measure_skewed_conjuncts(rows, repeats=repeats),
        "build_side_join": measure_build_side_join(
            200, max(rows // 2, 1000), repeats=repeats
        ),
        "adaptive_groupby": measure_adaptive_groupby(
            min(rows // 10, 10_000), repeats=repeats
        ),
    }
    for name in ("skewed_conjuncts", "build_side_join", "adaptive_groupby"):
        workload = section[name]
        print(
            f"optimizer {name}: ablation "
            f"{workload['median_s']['ablation'] * 1e3:8.2f}ms -> optimized "
            f"{workload['median_s']['optimizer'] * 1e3:8.2f}ms "
            f"({workload['speedup_median']:.2f}x, "
            f"identical={workload['identical_to_ablation']})"
        )
    return section


# ---------------------------------------------------------------------------
# pytest entry points (tiny smoke in the quick suite; full size is opt-in)
# ---------------------------------------------------------------------------


@pytest.mark.optimizer
def test_optimizer_bench_smoke():
    """Quick-suite smoke: decisions fire and ablation results match."""
    skewed = measure_skewed_conjuncts(rows=20_000, repeats=1)
    assert skewed["identical_to_ablation"]
    assert skewed["conjunct_reorders"] >= 1
    join = measure_build_side_join(100, 5_000, repeats=1)
    assert join["identical_to_ablation"]
    assert join["flipped_to_left_build"]


@pytest.mark.optimizer
@pytest.mark.slow
def test_optimizer_bench_full_size():
    """The acceptance bar: ≥1.3x on the skewed-conjunct workload and a
    correct build-side flip on the asymmetric join."""
    section = run_optimizer(rows=100_000, repeats=3)
    skewed = section["skewed_conjuncts"]
    assert skewed["identical_to_ablation"]
    assert skewed["speedup_median"] >= 1.3, skewed["speedup_median"]
    join = section["build_side_join"]
    assert join["identical_to_ablation"]
    assert join["flipped_to_left_build"]
    grouped = section["adaptive_groupby"]
    assert grouped["identical_to_ablation"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=100_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)
    rows = 20_000 if args.quick else args.rows
    section = run_optimizer(rows, repeats=args.repeats)
    if args.out is not None:
        args.out.write_text(json.dumps(section, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
