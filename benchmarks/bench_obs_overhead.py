"""Experiment OBS — tracing overhead and trace isolation.

The observability subsystem (:mod:`repro.obs`) promises two properties this
benchmark enforces:

1. **Near-zero cost when disabled.**  Every instrumentation site guards on
   ``trace is None``, so a non-profiled run should pay nothing measurable.
   We run the fig2 pipeline workload through three interleaved arms —
   ``baseline`` and ``disabled`` are *identical* ``profile=False`` runs (an
   A/A pair whose difference is the measurable cost of the disabled
   instrumentation plus noise floor), ``enabled`` adds ``profile=True`` —
   and fail if the disabled arm exceeds the baseline by more than 2% on
   best-of-``repeats`` medians.
2. **No span leakage between sessions.**  Concurrent profiled sessions
   through the :class:`~repro.runtime.session.SessionFrontEnd` must each
   produce a trace whose spans all belong to that trace, with exactly the
   task-span population a solo run of the same query produces.  Ambient
   (thread-local) span attribution makes this the property most at risk.

``python benchmarks/bench_obs_overhead.py`` prints the report;
``benchmarks/run_all.py`` embeds it in ``BENCH_engine.json`` (the ``obs``
section, which also records the parallel run's achieved overlap and the
vectorized fast-path hit counts).  The pytest functions below run a tiny
configuration so the quick suite doubles as a smoke test.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import time  # noqa: E402

from benchmarks.common import PAPER_SQL, build_processor  # noqa: E402
from repro.obs.metrics import delta, registry  # noqa: E402
from repro.runtime.session import QueryRequest, SessionFrontEnd  # noqa: E402

#: The fig2 workload (rows mirror bench_fig2_processor.py's quick size).
DEFAULT_ROWS = 3000
#: Disabled-tracing overhead budget (fraction over the A/A baseline arm).
OVERHEAD_BUDGET = 0.02


def _measure_arms(rows: int, repeats: int, inner: int) -> Dict[str, float]:
    """Best-of-``repeats`` seconds per arm; arms interleave to share noise."""
    processor = build_processor(rows)
    arms = {
        "baseline": dict(profile=False),
        "disabled": dict(profile=False),
        "enabled": dict(profile=True),
    }

    def run(options: Dict[str, Any]) -> None:
        for _ in range(inner):
            result = processor.process(PAPER_SQL, "ActionFilter", **options)
            assert result.admitted

    for options in arms.values():  # warmup: parse/compile caches, all paths
        run(options)
    samples: Dict[str, List[float]] = {name: [] for name in arms}
    for _ in range(repeats):
        for name, options in arms.items():
            started = time.perf_counter()
            run(options)
            samples[name].append(time.perf_counter() - started)
    return {name: min(values) for name, values in samples.items()}


def _check_span_isolation(rows: int, sessions: int) -> Dict[str, Any]:
    """Concurrent profiled sessions must not leak spans into each other."""
    processor = build_processor(rows, execution="parallel")
    solo = processor.process(PAPER_SQL, "ActionFilter", profile=True)
    expected_tasks = len(solo.trace.by_kind("task"))

    requests = [
        QueryRequest(PAPER_SQL, "ActionFilter", options={"profile": True})
        for _ in range(sessions)
    ]
    with SessionFrontEnd(processor, max_concurrent=min(4, sessions)) as front_end:
        results = front_end.run_batch(requests)

    for index, result in enumerate(results):
        trace = result.trace
        assert trace is not None, f"session {index}: no trace attached"
        foreign = [span for span in trace.snapshot() if span.trace is not trace]
        assert not foreign, (
            f"session {index}: {len(foreign)} span(s) belong to another trace "
            "(spans leaked between sessions)"
        )
        task_spans = trace.by_kind("task")
        assert len(task_spans) == expected_tasks, (
            f"session {index}: {len(task_spans)} task spans, expected "
            f"{expected_tasks} (spans leaked between sessions or got lost)"
        )
        unfinished = [span for span in trace.snapshot() if not span.finished]
        assert not unfinished, f"session {index}: {len(unfinished)} open span(s)"
    return {
        "sessions": sessions,
        "task_spans_per_session": expected_tasks,
        "leaked_spans": 0,
    }


def run_obs_overhead(
    rows: int = DEFAULT_ROWS, repeats: int = 5, inner: int = 3, sessions: int = 6
) -> Dict[str, Any]:
    """The full OBS report: overhead arms + overlap/fast-path + isolation."""
    arms = _measure_arms(rows, repeats, inner)
    disabled_overhead = arms["disabled"] / arms["baseline"] - 1.0
    enabled_overhead = arms["enabled"] / arms["baseline"] - 1.0
    assert disabled_overhead < OVERHEAD_BUDGET, (
        f"tracing-disabled overhead {disabled_overhead:.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget (arms: {arms})"
    )

    # One profiled parallel run: achieved overlap + vectorized scan paths.
    processor = build_processor(rows, execution="parallel")
    before = registry.snapshot(prefix="engine.vectorized.")
    profiled = processor.process(PAPER_SQL, "ActionFilter", profile=True)
    fast_path = {
        key.replace("engine.vectorized.", ""): value
        for key, value in delta(
            before, registry.snapshot(prefix="engine.vectorized.")
        ).items()
        if value
    }

    report: Dict[str, Any] = {
        "rows": rows,
        "repeats": repeats,
        "inner_runs_per_sample": inner,
        "arm_best_s": arms,
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "overhead_budget": OVERHEAD_BUDGET,
        "overlap": round(profiled.runtime.overlap, 3),
        "fast_path_hits": fast_path,
        "isolation": _check_span_isolation(max(rows // 5, 200), sessions),
    }
    return report


# ---------------------------------------------------------------------------
# quick-suite smoke tests (tiny configuration)
# ---------------------------------------------------------------------------
def test_obs_overhead_quick():
    report = run_obs_overhead(rows=600, repeats=3, inner=2, sessions=4)
    assert report["disabled_overhead"] < OVERHEAD_BUDGET
    assert report["isolation"]["leaked_spans"] == 0


if __name__ == "__main__":
    print(json.dumps(run_obs_overhead(), indent=2))
