"""Experiment GP — distributed partial aggregation for GROUP BY workloads.

Measures what the partial-aggregation protocol buys on the paper's most
common smart-home query shape (``AVG``/``SUM``/``COUNT`` per device): with
decomposable aggregates the parallel runtime aggregates every leaf chunk
into mergeable states where it lives and ships *group states* up the tree,
instead of merging the raw rows at one node first.

Three configurations over the same tree and the same Table-1-style cost
model (slow links dominate — the smart-home regime the paper targets):

* ``serial`` — the oracle walks every chunk one after another.
* ``global_merge`` — the parallel DAG with partial aggregation disabled
  (PR 2 behaviour): raw rows union at a single node before the GROUP BY.
* ``partial`` — leaf partial aggregation, per-level combines, one
  finalize; no global merge task exists in the DAG.

Reported per configuration: median wall clock, the transfer-log totals and
the maximum rows/bytes crossing any single hop.  The headline metrics are
the wall-clock speedups of ``partial`` over the other two and the per-hop
row reduction (group states vs raw chunks).

``python benchmarks/bench_groupby_pushdown.py`` runs the full-size variant
standalone; ``benchmarks/run_all.py`` embeds the quick variant as the
``groupby_pushdown`` section of ``BENCH_runtime.json``.  The pytest smoke
test below stays tiny; the full-size variant is marked ``slow`` and
therefore opt-in (``pytest -m slow``).
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.engine.table import Relation  # noqa: E402
from repro.fragment.topology import Topology  # noqa: E402
from repro.policy.presets import figure4_policy  # noqa: E402
from repro.processor.paradise import ParadiseProcessor  # noqa: E402
from repro.runtime import CostModel  # noqa: E402

#: The Figure-2 workload family: per-device statistics over the stream.
GROUP_BY_SQL = (
    "SELECT device, COUNT(*) AS n, AVG(value) AS av, SUM(value) AS sv, "
    "MIN(value) AS mn, MAX(value) AS mx "
    "FROM d GROUP BY device"
)

#: Link-bound cost model: per-row compute stays cheap, shipping a KB is
#: expensive (sensor-network links), so traffic reduction is what wins.
DEFAULT_COST = CostModel(seconds_per_row=2e-6, seconds_per_kb=2e-3)

N_SENSORS = 8
N_DEVICES = 4


def device_relation(rows: int, seed: int = 0) -> Relation:
    """Per-device readings: few groups, many rows — the pushdown sweet spot."""
    rng = random.Random(seed)
    data = []
    for index in range(rows):
        data.append(
            {
                "device": rng.randint(1, N_DEVICES),
                "value": round(rng.uniform(0.0, 100.0), 3),
                "flag": rng.random() > 0.1,
                "t": round(index * 0.05, 3),
            }
        )
    return Relation.from_rows(data, name="d")


def build_processor(
    rows: int, partial_aggregation: bool, cost_model: Optional[CostModel]
) -> ParadiseProcessor:
    processor = ParadiseProcessor(
        figure4_policy(),
        topology=Topology.smart_home_tree(n_sensors=N_SENSORS, sensors_per_appliance=4),
        cost_model=cost_model,
        partial_aggregation=partial_aggregation,
    )
    processor.load_data(device_relation(rows))
    return processor


def _run(processor: ParadiseProcessor, mode: str):
    return processor.process(
        GROUP_BY_SQL,
        "ActionFilter",
        execution=mode,
        apply_rewriting=False,
        anonymize=False,
    )


def _transfer_summary(result) -> Dict[str, Any]:
    hops = result.transfers.by_hop()
    return {
        "total_rows": result.transfers.total_rows,
        "total_bytes": result.transfers.total_bytes,
        "hop_count": len(hops),
        "max_rows_per_hop": max((hop["rows"] for hop in hops), default=0),
        "max_bytes_per_hop": max((hop["bytes"] for hop in hops), default=0),
    }


def measure_groupby_pushdown(
    rows: int, repeats: int, cost_model: Optional[CostModel] = DEFAULT_COST
) -> Dict[str, Any]:
    """Time serial vs global-merge vs partial and compare traffic per hop."""
    partial = build_processor(rows, True, cost_model)
    baseline = build_processor(rows, False, cost_model)

    samples: Dict[str, List[float]] = {"serial": [], "global_merge": [], "partial": []}
    runs = {}
    for processor, mode, key in (
        (partial, "serial", "serial"),
        (baseline, "parallel", "global_merge"),
        (partial, "parallel", "partial"),
    ):
        _run(processor, mode)  # warmup: parse/compile caches
        for _ in range(repeats):
            started = time.perf_counter()
            result = _run(processor, mode)
            samples[key].append(time.perf_counter() - started)
        runs[key] = result

    identical = (
        runs["serial"].result.rows == runs["partial"].result.rows
        and runs["serial"].result.rows == runs["global_merge"].result.rows
        and runs["serial"].result.schema.names == runs["partial"].result.schema.names
    )
    medians = {key: statistics.median(values) for key, values in samples.items()}
    stats = runs["partial"].runtime
    entry: Dict[str, Any] = {
        "rows": rows,
        "n_sensors": N_SENSORS,
        "n_groups": N_DEVICES,
        "repeats": repeats,
        "identical_results": identical,
        "median_s": {key: round(value, 6) for key, value in medians.items()},
        "speedup_vs_serial": round(medians["serial"] / medians["partial"], 3),
        "speedup_vs_global_merge": round(
            medians["global_merge"] / medians["partial"], 3
        ),
        "transfer": {key: _transfer_summary(runs[key]) for key in runs},
        "dag": {
            "partial_tasks": stats.partial_count if stats else 0,
            "combine_tasks": stats.combine_count if stats else 0,
            "merge_tasks": stats.merge_count if stats else 0,
        },
    }
    print(
        f"groupby pushdown ({rows} rows): serial {medians['serial'] * 1e3:7.1f}ms  "
        f"global-merge {medians['global_merge'] * 1e3:7.1f}ms  "
        f"partial {medians['partial'] * 1e3:7.1f}ms  "
        f"({entry['speedup_vs_serial']:.2f}x vs serial, "
        f"{entry['speedup_vs_global_merge']:.2f}x vs global merge); "
        f"max rows/hop {entry['transfer']['global_merge']['max_rows_per_hop']} -> "
        f"{entry['transfer']['partial']['max_rows_per_hop']}"
    )
    return entry


# ---------------------------------------------------------------------------
# pytest entry points (tiny smoke in the quick suite; full size is opt-in)
# ---------------------------------------------------------------------------


def test_groupby_pushdown_smoke():
    """Quick-suite smoke: identical results and strictly less traffic."""
    entry = measure_groupby_pushdown(rows=400, repeats=1, cost_model=None)
    assert entry["identical_results"]
    transfer = entry["transfer"]
    assert transfer["partial"]["total_rows"] < transfer["global_merge"]["total_rows"]
    assert transfer["partial"]["total_rows"] < transfer["serial"]["total_rows"]
    # Group states, not raw chunks, cross every hop.
    assert transfer["partial"]["max_rows_per_hop"] <= entry["n_groups"]
    assert entry["dag"]["merge_tasks"] == 0
    assert entry["dag"]["partial_tasks"] == entry["n_sensors"]


@pytest.mark.slow
def test_groupby_pushdown_full_size():
    """The acceptance bar: a real wall-clock win in the link-bound regime."""
    entry = measure_groupby_pushdown(rows=3000, repeats=2)
    assert entry["identical_results"]
    assert entry["speedup_vs_serial"] >= 1.5
    assert entry["speedup_vs_global_merge"] >= 1.2


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=4000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)
    rows = 800 if args.quick else args.rows
    repeats = 2 if args.quick else args.repeats
    entry = measure_groupby_pushdown(rows=rows, repeats=repeats)
    if args.out is not None:
        args.out.write_text(json.dumps(entry, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
