"""Run every benchmark in quick mode and record the perf baselines.

Three jobs in one entry point:

1. **Quick suite** — execute every ``bench_*.py`` under pytest with
   pytest-benchmark's timing disabled, so the whole suite doubles as a smoke
   test (seconds, not minutes).
2. **Engine baseline** — time the two engine-bound paper workloads
   (``bench_fig2_processor.py``'s pipeline query and
   ``bench_usecase_rewrite.py``'s R use case) through both execution paths
   (interpreted oracle vs. compiled default) in the same process, and write
   ``BENCH_engine.json`` with median/p90 latencies, rows/sec and speedups.
   The ``columnar`` section (``bench_columnar.py``) additionally compares
   the vectorized columnar scans against the row-dict scan baseline on
   projection/filter/aggregate microbenchmarks at 10k and 100k rows.
   Future PRs compare against this trajectory to prove wins or catch
   regressions.
3. **Runtime scaling baseline** — run ``bench_runtime_scaling.py`` in quick
   mode (parallel DAG execution vs. the serial oracle over sensor fan-outs,
   plus concurrent sessions) and write ``BENCH_runtime.json``.  Its
   ``multicore`` section (``bench_multicore.py``) compares the thread
   backend against 1/2/4 process workers on a compute-bound workload with
   cost-model sleeps disabled, differential-checked in-loop.
4. **Observability guardrail** — run ``bench_obs_overhead.py`` (the ``obs``
   section): asserts tracing-disabled overhead stays under 2% on the fig2
   workload, that concurrent profiled sessions never leak spans, and records
   the achieved runtime overlap plus vectorized fast-path hit counts.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--repeats N] [--skip-suite]
        [--skip-runtime] [--only SECTION]

``--only <section>`` runs exactly one section (``suite``, ``workloads``,
``columnar``, ``optimizer``, ``obs``, ``runtime`` or ``standing``) — handy
for CI smoke runs; pair it with ``--out`` so a partial report never
overwrites the committed baselines.
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks.common import (  # noqa: E402
    PAPER_R_CODE,
    PAPER_SQL,
    build_processor,
    summarize_samples,
)
from repro.engine.executor import execution_mode  # noqa: E402

#: Sections selectable with ``--only`` (default: all except the standalone
#: ``standing`` grid, which normally rides inside the ``runtime`` report).
SECTIONS = (
    "suite",
    "workloads",
    "columnar",
    "optimizer",
    "obs",
    "runtime",
    "standing",
)

#: Engine-bound workloads; row counts mirror the corresponding bench files.
WORKLOADS = [
    {
        "name": "fig2_processor",
        "bench": "bench_fig2_processor.py",
        "rows": 3000,
        "description": "full privacy pipeline (admit + rewrite + fragment + "
        "execute + anonymize) over the paper's SQL query",
        "use_r": False,
    },
    {
        "name": "usecase_rewrite",
        "bench": "bench_usecase_rewrite.py",
        "rows": 4000,
        "description": "Section 4.2 R use case end to end (extraction, "
        "rewriting, staged execution Q1..Q4 + Qdelta)",
        "use_r": True,
    },
]


def run_quick_suite() -> Dict[str, Any]:
    """Run every bench_*.py once with benchmark timing disabled."""
    bench_files = sorted(path.name for path in (REPO_ROOT / "benchmarks").glob("bench_*.py"))
    command = [
        sys.executable,
        "-m",
        "pytest",
        *[f"benchmarks/{name}" for name in bench_files],
        "-q",
        # Full-size benchmark variants are marked ``slow`` and stay opt-in
        # (run them directly or with ``pytest -m slow``).
        "-m",
        "not slow",
        "--benchmark-disable",
        "-p",
        "no:cacheprovider",
    ]
    completed = subprocess.run(
        command,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    tail = completed.stdout.strip().splitlines()[-1] if completed.stdout.strip() else ""
    print(f"quick suite [{', '.join(bench_files)}]: {tail}")
    return {
        "files": bench_files,
        "exit_code": completed.returncode,
        "summary": tail,
    }


def measure_workload(workload: Dict[str, Any], repeats: int) -> Dict[str, Dict[str, Any]]:
    """Time both execution modes, interleaved so they share noise windows."""
    modes = ("interpreted", "compiled")
    processors = {
        mode: build_processor(workload["rows"], engine_mode=mode) for mode in modes
    }
    wall: Dict[str, List[float]] = {mode: [] for mode in modes}
    engine: Dict[str, List[float]] = {mode: [] for mode in modes}

    def run(mode: str):
        processor = processors[mode]
        with execution_mode(mode):
            if workload["use_r"]:
                result = processor.process_r(PAPER_R_CODE, "ActionFilter")
            else:
                result = processor.process(PAPER_SQL, "ActionFilter")
        assert result.admitted
        return result

    for mode in modes:  # warmup: populate parse/compile caches
        run(mode)
    for _ in range(repeats):
        for mode in modes:
            started = time.perf_counter()
            result = run(mode)
            wall[mode].append(time.perf_counter() - started)
            engine[mode].append(sum(e.elapsed_seconds for e in result.executions))

    summaries: Dict[str, Dict[str, Any]] = {}
    for mode in modes:
        summary = summarize_samples(wall[mode], rows=workload["rows"])
        summary["engine_median_s"] = statistics.median(engine[mode])
        summary["engine_samples"] = summarize_samples(engine[mode])
        summaries[mode] = summary
    return summaries


def run_engine_baseline(repeats: int) -> Dict[str, Any]:
    results: Dict[str, Any] = {}
    for workload in WORKLOADS:
        entry: Dict[str, Any] = {
            "bench": workload["bench"],
            "rows": workload["rows"],
            "description": workload["description"],
        }
        entry.update(measure_workload(workload, repeats))
        entry["speedup_median"] = round(
            entry["interpreted"]["median_s"] / entry["compiled"]["median_s"], 3
        )
        entry["engine_speedup_median"] = round(
            entry["interpreted"]["engine_median_s"] / entry["compiled"]["engine_median_s"],
            3,
        )
        print(
            f"{workload['name']}: {entry['interpreted']['median_s'] * 1e3:.1f}ms -> "
            f"{entry['compiled']['median_s'] * 1e3:.1f}ms "
            f"({entry['speedup_median']:.2f}x pipeline, "
            f"{entry['engine_speedup_median']:.2f}x engine)"
        )
        results[workload["name"]] = entry
    return results


def main(argv: List[str] | None = None) -> int:
    def positive_int(value: str) -> int:
        parsed = int(value)
        if parsed < 1:
            raise argparse.ArgumentTypeError("must be at least 1")
        return parsed

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repeats", type=positive_int, default=7, help="measured runs per mode (>= 1)"
    )
    parser.add_argument("--skip-suite", action="store_true", help="skip the pytest quick pass")
    parser.add_argument(
        "--skip-runtime", action="store_true", help="skip the runtime scaling baseline"
    )
    parser.add_argument(
        "--skip-columnar", action="store_true", help="skip the columnar scan section"
    )
    parser.add_argument(
        "--skip-obs", action="store_true", help="skip the observability overhead section"
    )
    parser.add_argument(
        "--skip-optimizer",
        action="store_true",
        help="skip the cost-based-optimizer section",
    )
    parser.add_argument(
        "--only",
        choices=SECTIONS,
        help="run exactly one section (overrides the --skip-* flags); "
        "``--only standing`` runs the quick standing-query grid standalone",
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_engine.json", help="output path"
    )
    parser.add_argument(
        "--runtime-out",
        type=Path,
        default=REPO_ROOT / "BENCH_runtime.json",
        help="runtime scaling output path",
    )
    args = parser.parse_args(argv)

    if args.only:
        enabled = {args.only}
    else:
        enabled = set(SECTIONS)
        if args.skip_suite:
            enabled.discard("suite")
        if args.skip_columnar:
            enabled.discard("columnar")
        if args.skip_optimizer:
            enabled.discard("optimizer")
        if args.skip_obs:
            enabled.discard("obs")
        if args.skip_runtime:
            enabled.discard("runtime")
        # ``standing`` rides inside the runtime report on full runs; the
        # standalone section exists for ``--only standing``.
        enabled.discard("standing")

    report: Dict[str, Any] = {
        "generated_by": "benchmarks/run_all.py",
        "python": sys.version.split()[0],
        "repeats": args.repeats,
        "metric_note": "median/p90 wall seconds; engine_* sums the per-fragment "
        "execution times, excluding rewriting/anonymization/network overheads "
        "shared by both modes",
    }
    if "suite" in enabled:
        report["quick_suite"] = run_quick_suite()
    if "workloads" in enabled:
        report["workloads"] = run_engine_baseline(args.repeats)

    if "columnar" in enabled:
        from benchmarks.bench_columnar import run_columnar

        report["columnar"] = run_columnar([10_000, 100_000], repeats=args.repeats)

    if "optimizer" in enabled:
        from benchmarks.bench_optimizer import run_optimizer

        # Skewed-conjunct filter, build-side-sensitive join, and adaptive
        # partial-aggregation placement — each differential-checked in-loop
        # against the optimizer_mode(False) ablation.
        report["optimizer"] = run_optimizer(rows=100_000, repeats=args.repeats)

    if "obs" in enabled:
        from benchmarks.bench_obs_overhead import run_obs_overhead

        # Asserts tracing-disabled overhead < 2% on the fig2 workload and
        # that concurrent profiled sessions never leak spans; also records
        # the parallel run's achieved overlap and vectorized fast-path hits.
        report["obs"] = run_obs_overhead(repeats=max(3, args.repeats // 2))
        print(
            f"obs: disabled overhead {report['obs']['disabled_overhead']:+.1%}, "
            f"enabled {report['obs']['enabled_overhead']:+.1%}, "
            f"overlap x{report['obs']['overlap']:.2f}"
        )

    if "standing" in enabled:
        from benchmarks.bench_standing import run_standing

        # Quick standalone grid (one fanout, two query counts) — the full
        # grid runs inside the runtime section's BENCH_runtime.json.
        report["standing"] = run_standing(
            refreshes=3, query_counts=(16, 64), fanouts=(8,)
        )

    if "runtime" in enabled:
        from benchmarks.bench_runtime_scaling import run_runtime_scaling

        runtime_report = run_runtime_scaling(
            rows=800, repeats=2, out=args.runtime_out
        )
        pushdown = runtime_report.get("groupby_pushdown", {})
        report["runtime_scaling"] = {
            "out": str(args.runtime_out),
            "eight_sensor_speedup": next(
                (
                    entry["speedup_median"]
                    for entry in runtime_report["fanout"]
                    if entry["n_sensors"] >= 8
                ),
                None,
            ),
            "groupby_pushdown_speedup_vs_serial": pushdown.get("speedup_vs_serial"),
            "groupby_pushdown_speedup_vs_global_merge": pushdown.get(
                "speedup_vs_global_merge"
            ),
            "multicore_best_speedup_vs_threads": runtime_report.get(
                "multicore", {}
            ).get("best_speedup_vs_threads"),
            "standing_best_marginal_speedup_at_64": runtime_report.get(
                "standing", {}
            ).get("best_marginal_speedup_at_64"),
            "chaos_recovery_overheads": {
                f"fanout{entry['n_sensors']}_failures{entry['injected_failures']}": entry[
                    "overhead_vs_healthy"
                ]
                for entry in runtime_report.get("chaos", {}).get("entries", [])
                if entry["injected_failures"] > 0
            },
        }

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if "quick_suite" in report and report["quick_suite"]["exit_code"] != 0:
        return report["quick_suite"]["exit_code"]
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
