"""Experiment UC — the Section 4.2 use case: Q → Q1..Q4 + Qδ.

The paper prints five listings: the original R/SQL analysis, the rewritten
nested query and the four per-level queries.  This benchmark regenerates all
of them, asserts they match the paper's listings and measures the cost of the
complete transformation chain (R extraction → rewriting → fragmentation) and
of executing each staged query on its node.
"""

from __future__ import annotations

import pytest

from benchmarks.common import PAPER_R_CODE, build_processor, print_table
from repro.fragment import Topology, VerticalFragmenter
from repro.policy.presets import figure4_policy
from repro.rewrite import QueryRewriter
from repro.rlang import extract_sql_from_r

#: The staged queries exactly as printed in Section 4.2 of the paper
#: (modulo keyword capitalisation, which our renderer normalises).
EXPECTED_STAGES = {
    "d1": "SELECT * FROM d WHERE z < 2",
    "d2": "SELECT x, y, z, t FROM d1 WHERE x > y",
    "d3": "SELECT x, y, AVG(z) AS zAVG, t FROM d2 GROUP BY x, y HAVING SUM(z) > 100",
    "d4": "SELECT REGR_INTERCEPT(y, x) OVER (PARTITION BY zAVG ORDER BY t) FROM d3",
}


def transformation_chain():
    extraction = extract_sql_from_r(PAPER_R_CODE)
    rewritten = QueryRewriter(figure4_policy()).rewrite(extraction.query, "ActionFilter")
    plan = VerticalFragmenter(Topology.default_chain()).fragment(rewritten.query)
    return extraction, rewritten, plan


def test_usecase_stages_match_paper_listings():
    extraction, rewritten, plan = transformation_chain()
    assert extraction.residual_call("d'") == "filterByClass(d', action='walk', do.plot=F)"
    assert "WHERE x > y AND z < 2" in rewritten.sql
    staged = {fragment.name: fragment.sql for fragment in plan.fragments}
    rows = [
        {
            "fragment": fragment.name,
            "level": fragment.level.short_name,
            "node": fragment.assigned_node,
            "sql": fragment.sql,
        }
        for fragment in plan.fragments
    ]
    print_table("Use case — staged queries Q1..Q4", rows, ["fragment", "level", "node", "sql"])
    assert staged == EXPECTED_STAGES


@pytest.mark.benchmark(group="usecase-transformation")
def test_bench_full_transformation_chain(benchmark):
    extraction, rewritten, plan = benchmark(transformation_chain)
    assert len(plan.fragments) == 4


@pytest.mark.benchmark(group="usecase-execution")
@pytest.mark.parametrize("rows", [1000, 4000])
def test_bench_usecase_end_to_end_execution(benchmark, rows):
    processor = build_processor(rows)
    result = benchmark.pedantic(
        processor.process_r,
        args=(PAPER_R_CODE, "ActionFilter"),
        rounds=2,
        iterations=1,
    )
    assert result.admitted
    assert result.remainder_call.startswith("filterByClass(d_prime")


def test_usecase_per_stage_row_counts():
    """Row counts after every staged query (the 'reduction funnel')."""
    processor = build_processor(4000)
    result = processor.process_r(PAPER_R_CODE, "ActionFilter", anonymize=False)
    rows = [
        {
            "stage": execution.fragment_name,
            "node": execution.node,
            "level": execution.level,
            "input rows": execution.input_rows,
            "output rows": execution.output_rows,
            "selectivity": f"{execution.selectivity:.3f}",
        }
        for execution in result.executions
    ]
    print_table(
        "Use case — per-stage data reduction",
        rows,
        ["stage", "node", "level", "input rows", "output rows", "selectivity"],
    )
    assert rows[0]["input rows"] == 4000
