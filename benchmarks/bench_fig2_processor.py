"""Experiment F2 — Figure 2: the privacy-aware query processor pipeline.

Figure 2 sketches the processor: preprocessor (policy check + rewriting),
query execution, postprocessor (anonymization) and the policy generator.
This benchmark measures the latency of each pipeline stage and of the whole
processor, with the privacy machinery enabled and disabled, over the
meeting-room workload.
"""

from __future__ import annotations

import pytest

from benchmarks.common import PAPER_SQL, build_processor, print_table
from repro.anonymize import Anonymizer
from repro.policy.presets import figure4_policy, open_policy
from repro.rewrite import PolicyAnalyzer, QueryRewriter
from repro.sql.parser import parse

ROWS = 3000


@pytest.fixture(scope="module")
def processor():
    return build_processor(ROWS, anonymizer=Anonymizer(algorithm="k_anonymity", k=5))


@pytest.mark.benchmark(group="fig2-stages")
def test_bench_stage_admission(benchmark):
    analyzer = PolicyAnalyzer(figure4_policy())
    query = parse(PAPER_SQL)
    decision = benchmark(analyzer.admit, query, "ActionFilter")
    assert decision.admitted


@pytest.mark.benchmark(group="fig2-stages")
def test_bench_stage_rewriting(benchmark):
    rewriter = QueryRewriter(figure4_policy())
    query = parse(PAPER_SQL)
    result = benchmark(rewriter.rewrite, query, "ActionFilter")
    assert result.compliant


@pytest.mark.benchmark(group="fig2-pipeline")
def test_bench_full_pipeline_with_privacy(benchmark, processor):
    result = benchmark.pedantic(
        processor.process,
        args=(PAPER_SQL, "ActionFilter"),
        rounds=3,
        iterations=1,
    )
    assert result.admitted


@pytest.mark.benchmark(group="fig2-pipeline")
def test_bench_full_pipeline_without_privacy(benchmark, processor):
    result = benchmark.pedantic(
        processor.process,
        args=(PAPER_SQL, "ActionFilter"),
        kwargs={"apply_rewriting": False, "anonymize": False, "pushdown": False},
        rounds=3,
        iterations=1,
    )
    assert result.admitted


def test_fig2_pipeline_report(processor):
    """Per-stage summary of one processing run (the Figure 2 boxes)."""
    protected = processor.process(PAPER_SQL, "ActionFilter")
    unprotected = processor.process(
        PAPER_SQL, "ActionFilter", apply_rewriting=False, anonymize=False, pushdown=False
    )
    rows = [
        {
            "configuration": "PArADISE (rewrite + pushdown + anonymize)",
            "rows to cloud": protected.rows_leaving_apartment,
            "bytes to cloud": protected.bytes_leaving_apartment,
            "elapsed s": round(protected.elapsed_seconds, 4),
        },
        {
            "configuration": "plain cloud processing",
            "rows to cloud": unprotected.rows_leaving_apartment,
            "bytes to cloud": unprotected.bytes_leaving_apartment,
            "elapsed s": round(unprotected.elapsed_seconds, 4),
        },
    ]
    print_table(
        "Figure 2 — processor pipeline", rows,
        ["configuration", "rows to cloud", "bytes to cloud", "elapsed s"],
    )
    assert protected.rows_leaving_apartment < unprotected.rows_leaving_apartment
