"""Experiment ST — incremental standing queries vs re-execute-per-refresh.

N standing decomposable GROUP BY queries register against one continuously
loaded sensor tree (:mod:`repro.runtime.standing`).  Each refresh appends
one delta chunk to a round-robin leaf; the runtime folds the delta's
partial state into the touched leaf, re-combines only that leaf's root
path, and re-finalizes every subscriber.  The baseline is what the
front-end did before this PR: re-execute each registered query from
scratch over the full current data on every refresh.

Reported per (fanout, query count):

* ``refresh`` — incremental wall clock per delta (all N subscribers
  re-finalized), and the **per-query marginal cost** ``refresh / N``;
* ``reexecute_per_query`` — the from-scratch per-query cost (measured on a
  rotating sample of the registered queries, recorded as such);
* ``marginal_speedup`` — re-execute / incremental marginal cost.  The
  acceptance bar is >= 5x at 64 standing queries;
* ``trees`` / ``max_subscribers`` — cross-session sharing: containment-
  equal queries attach to one maintained state tree (``max_subscribers``
  must exceed 1).

Every refresh is differential-checked in-loop on a rotating sample of
handles: the maintained result must be byte-identical (wire encoding) to
from-scratch re-execution — a fast-but-wrong refresh fails the benchmark,
not just the test suite.

``benchmarks/run_all.py`` folds this report into ``BENCH_runtime.json`` as
the ``standing`` section.
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Sequence

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.common import (  # noqa: E402
    print_table,
    summarize_samples,
    synthetic_sensor_relation,
)
from repro.engine.wire import pack_state_relation  # noqa: E402
from repro.fragment.topology import Topology  # noqa: E402
from repro.policy.presets import figure4_policy  # noqa: E402
from repro.processor.paradise import ParadiseProcessor  # noqa: E402
from repro.runtime.standing import StandingQueryRuntime  # noqa: E402
from repro.sensors.scenario import INTEGRATED_SCHEMA  # noqa: E402

QUERY_COUNTS = (16, 64, 256)
FANOUTS = (8, 16)

#: Tree families: queries inside one family differ only in their finalize
#: tail (HAVING threshold / ORDER BY direction / projection subset), so the
#: runtime attaches them all to one shared state tree; across families the
#: table/WHERE/keys signature differs and separate trees are maintained.
_FAMILIES = [
    {
        "select": "activity, COUNT(*) AS n, AVG(z) AS az, SUM(z) AS sz",
        "where": "",
        "group": "activity",
    },
    {
        "select": "person_id, COUNT(*) AS n, MIN(z) AS lo, MAX(z) AS hi",
        "where": "",
        "group": "person_id",
    },
    {
        "select": "activity, COUNT(*) AS n, AVG(x) AS ax, STDDEV(y) AS sy",
        "where": "WHERE z < 1.5",
        "group": "activity",
    },
    {
        "select": "person_id, activity, COUNT(*) AS n, AVG(t) AS at",
        "where": "",
        "group": "person_id, activity",
    },
]


def standing_queries(count: int) -> List[str]:
    """``count`` distinct standing queries spread over the tree families."""
    queries: List[str] = []
    for index in range(count):
        family = _FAMILIES[index % len(_FAMILIES)]
        threshold = 1 + (index // len(_FAMILIES)) % 7
        direction = "ASC" if (index // len(_FAMILIES)) % 2 == 0 else "DESC"
        queries.append(
            f"SELECT {family['select']} FROM d {family['where']} "
            f"GROUP BY {family['group']} "
            f"HAVING COUNT(*) > {threshold} ORDER BY COUNT(*) {direction}"
        )
    return queries


def build_standing_processor(rows: int, n_sensors: int) -> ParadiseProcessor:
    topology = Topology.smart_home_tree(n_sensors=n_sensors, sensors_per_appliance=4)
    processor = ParadiseProcessor(
        figure4_policy(), topology=topology, schema=INTEGRATED_SCHEMA
    )
    processor.load_data(synthetic_sensor_relation(rows))
    return processor


def measure_standing(
    rows: int,
    n_sensors: int,
    n_queries: int,
    refreshes: int,
    chunk_rows: int,
    baseline_sample: int = 8,
    check_sample: int = 4,
) -> Dict[str, Any]:
    """One (fanout, query-count) cell of the standing-query experiment."""
    processor = build_standing_processor(rows, n_sensors)
    runtime = StandingQueryRuntime(processor)
    handles = [runtime.register(sql) for sql in standing_queries(n_queries)]
    subscriber_counts = sorted(
        {id(h.tree): len(h.tree.subscribers) for h in handles}.values()
    )

    feed = synthetic_sensor_relation(refreshes * chunk_rows, seed=17)
    holders = processor.network.partition_holders("d")
    refresh_wall: List[float] = []
    reexec_wall: List[float] = []
    checked = 0
    for refresh in range(refreshes):
        delta = feed.slice_rows(
            refresh * chunk_rows, (refresh + 1) * chunk_rows, name="d"
        )
        leaf = holders[refresh % len(holders)]
        started = time.perf_counter()
        runtime.append(leaf, delta)
        refresh_wall.append(time.perf_counter() - started)

        # Baseline: from-scratch re-execution over the *current* data, on a
        # rotating sample of the registered queries (cost extrapolates
        # per-query; the sample size is recorded, not hidden).
        for offset in range(baseline_sample):
            handle = handles[(refresh * baseline_sample + offset) % len(handles)]
            started = time.perf_counter()
            oracle = runtime.reexecute(handle)
            reexec_wall.append(time.perf_counter() - started)
            if offset < check_sample:
                # In-loop differential: byte-identical wire encodings.
                assert pack_state_relation(handle.result()) == pack_state_relation(
                    oracle
                ), f"standing refresh diverged from oracle for {handle.sql}"
                checked += 1

    refresh_median = statistics.median(refresh_wall)
    reexec_per_query = statistics.median(reexec_wall)
    marginal = refresh_median / n_queries
    return {
        "n_sensors": n_sensors,
        "rows_loaded": rows + refreshes * chunk_rows,
        "n_queries": n_queries,
        "refreshes": refreshes,
        "chunk_rows": chunk_rows,
        "trees": runtime.tree_count,
        "subscribers_per_tree": subscriber_counts,
        "max_subscribers": subscriber_counts[-1] if subscriber_counts else 0,
        "refresh": summarize_samples(refresh_wall),
        "refresh_marginal_per_query_s": marginal,
        "reexecute_per_query": summarize_samples(reexec_wall),
        "baseline_sampled_queries": min(
            len(handles), 8
        ),
        "differential_checks": checked,
        "marginal_speedup": round(reexec_per_query / marginal, 2)
        if marginal > 0
        else None,
    }


def run_standing(
    rows: int = 1200,
    refreshes: int = 5,
    chunk_rows: int = 40,
    query_counts: Sequence[int] = QUERY_COUNTS,
    fanouts: Sequence[int] = FANOUTS,
) -> Dict[str, Any]:
    """The full grid; folded into ``BENCH_runtime.json`` as ``standing``."""
    entries: List[Dict[str, Any]] = []
    for n_sensors in fanouts:
        for n_queries in query_counts:
            entry = measure_standing(
                rows,
                n_sensors=n_sensors,
                n_queries=n_queries,
                refreshes=refreshes,
                chunk_rows=chunk_rows,
            )
            entries.append(entry)
            print(
                f"standing: {n_sensors} sensors, {n_queries} queries -> "
                f"refresh {entry['refresh']['median_s'] * 1e3:.1f}ms "
                f"({entry['refresh_marginal_per_query_s'] * 1e6:.0f}us/query), "
                f"reexecute {entry['reexecute_per_query']['median_s'] * 1e3:.2f}ms/query, "
                f"{entry['marginal_speedup']}x marginal, "
                f"{entry['trees']} trees (max {entry['max_subscribers']} subscribers)"
            )
    at64 = [entry for entry in entries if entry["n_queries"] == 64]
    return {
        "description": "incremental standing-query refresh vs re-execute-per-"
        "refresh baseline; marginal = refresh wall / registered queries",
        "entries": entries,
        "best_marginal_speedup_at_64": max(
            (entry["marginal_speedup"] for entry in at64), default=None
        ),
    }


# ---------------------------------------------------------------------------
# pytest smoke benchmarks (tiny configs; run in the quick suite)
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="standing")
def test_bench_standing_refresh(benchmark):
    processor = build_standing_processor(300, 8)
    runtime = StandingQueryRuntime(processor)
    handles = [runtime.register(sql) for sql in standing_queries(16)]
    feed = synthetic_sensor_relation(200, seed=17)
    holders = processor.network.partition_holders("d")
    ticker = {"i": 0}

    def one_refresh():
        i = ticker["i"]
        ticker["i"] += 1
        delta = feed.slice_rows((i * 20) % 180, (i * 20) % 180 + 20, name="d")
        runtime.append(holders[i % len(holders)], delta)

    benchmark.pedantic(one_refresh, rounds=3, iterations=1)
    handle = handles[0]
    assert pack_state_relation(handle.result()) == pack_state_relation(
        runtime.reexecute(handle)
    )


def test_standing_marginal_speedup_bar():
    """The acceptance bar: >= 5x lower marginal cost at 64 standing queries."""
    entry = measure_standing(
        1200, n_sensors=8, n_queries=64, refreshes=3, chunk_rows=40
    )
    assert entry["max_subscribers"] > 1
    assert entry["marginal_speedup"] >= 5.0, entry["marginal_speedup"]


def main() -> int:
    report = run_standing()
    print_table(
        "standing queries: incremental refresh vs re-execute",
        [
            {
                "sensors": entry["n_sensors"],
                "queries": entry["n_queries"],
                "trees": entry["trees"],
                "refresh_ms": f"{entry['refresh']['median_s'] * 1e3:.1f}",
                "us_per_query": f"{entry['refresh_marginal_per_query_s'] * 1e6:.0f}",
                "speedup": f"{entry['marginal_speedup']}x",
            }
            for entry in report["entries"]
        ],
        ["sensors", "queries", "trees", "refresh_ms", "us_per_query", "speedup"],
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
