"""Experiment CS — columnar storage: vectorized scans vs the row-dict path.

Microbenchmarks the three scan shapes the columnar refactor targets, each
over the same synthetic readings table:

* **projection** — ``SELECT value, device FROM d``: output columns are
  sliced straight from the input arrays (no per-row work at all).
* **filter** — simple WHERE conjuncts evaluated column-wise into an index
  selection, then gathered.
* **aggregate** — a single-pass GROUP BY whose accumulators consume column
  slices in bulk (``add_many``) instead of per-row tuples.

The baseline is the same compiled engine with the vectorized paths
disabled (``vectorized_scans(False)``) — i.e. the pre-columnar behaviour
of building one scope dict per row and calling compiled closures per
expression.  The interpreted oracle runs once per workload to confirm all
three paths return byte-identical relations.

``python benchmarks/bench_columnar.py`` runs the full-size variant
standalone; ``benchmarks/run_all.py`` embeds both row counts as the
``columnar`` section of ``BENCH_engine.json``.  The pytest smoke below is
quick-suite sized; the full-size speedup assertion is marked ``slow``.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.engine.database import Database  # noqa: E402
from repro.engine.executor import execution_mode  # noqa: E402
from repro.engine.vectorized import stats, vectorized_scans  # noqa: E402

#: The three scan shapes; names become keys of the ``columnar`` section.
WORKLOADS: Dict[str, str] = {
    "projection": "SELECT value, device FROM d",
    "filter": "SELECT value, t FROM d WHERE value > 50 AND device = 3",
    "aggregate": (
        "SELECT device, COUNT(*) AS n, AVG(value) AS av, SUM(value) AS sv, "
        "MIN(value) AS mn, MAX(value) AS mx FROM d GROUP BY device"
    ),
}


def build_database(rows: int, seed: int = 0) -> Database:
    """A database holding ``rows`` synthetic device readings."""
    rng = random.Random(seed)
    data = [
        {
            "id": index,
            "device": rng.randint(1, 8),
            "value": round(rng.uniform(0.0, 100.0), 3),
            "flag": rng.random() > 0.1,
            "t": round(index * 0.05, 3),
        }
        for index in range(rows)
    ]
    database = Database(name="bench_columnar")
    database.load_rows("d", data)
    return database


def _median_seconds(fn, repeats: int) -> float:
    fn()  # warmup: parse/compile/plan caches
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def measure_columnar(rows: int, repeats: int = 3, seed: int = 0) -> Dict[str, Any]:
    """Time vectorized vs row-dict scans; oracle-check every workload."""
    database = build_database(rows, seed=seed)
    entry: Dict[str, Any] = {"rows": rows, "repeats": repeats, "workloads": {}}
    for name, sql in WORKLOADS.items():
        stats.reset()
        vectorized_result = database.query(sql)
        hits = stats.total
        with vectorized_scans(False):
            row_path_result = database.query(sql)
        with execution_mode("interpreted"):
            oracle_result = database.query(sql)
        identical = (
            vectorized_result.schema.names == oracle_result.schema.names
            and vectorized_result.to_dicts()
            == row_path_result.to_dicts()
            == oracle_result.to_dicts()
        )

        vectorized_median = _median_seconds(lambda: database.query(sql), repeats)

        def run_row_path() -> None:
            with vectorized_scans(False):
                database.query(sql)

        row_path_median = _median_seconds(run_row_path, repeats)
        workload = {
            "sql": sql,
            "identical_to_oracle": identical,
            "vectorized_hits": hits,
            "median_s": {
                "vectorized": round(vectorized_median, 6),
                "row_dict": round(row_path_median, 6),
            },
            "speedup_median": round(row_path_median / vectorized_median, 3)
            if vectorized_median
            else None,
            "rows_per_s_vectorized": round(rows / vectorized_median)
            if vectorized_median
            else None,
        }
        entry["workloads"][name] = workload
        print(
            f"columnar {name} ({rows} rows): row-dict "
            f"{row_path_median * 1e3:8.2f}ms -> vectorized "
            f"{vectorized_median * 1e3:8.2f}ms "
            f"({workload['speedup_median']:.2f}x, identical={identical})"
        )
    return entry


def run_columnar(row_counts: List[int], repeats: int = 3) -> Dict[str, Any]:
    """The ``columnar`` section of ``BENCH_engine.json``."""
    return {
        "baseline_note": "row_dict = same compiled engine with vectorized "
        "scans disabled (per-row scope dicts + per-expression closures, the "
        "pre-columnar behaviour); the interpreted oracle verifies identical "
        "relations on every workload",
        "sizes": [measure_columnar(rows, repeats=repeats) for rows in row_counts],
    }


# ---------------------------------------------------------------------------
# pytest entry points (tiny smoke in the quick suite; full size is opt-in)
# ---------------------------------------------------------------------------


def test_columnar_scan_smoke():
    """Quick-suite smoke: paths engage and results match the oracle."""
    entry = measure_columnar(rows=10_000, repeats=1)
    for name, workload in entry["workloads"].items():
        assert workload["identical_to_oracle"], name
        assert workload["vectorized_hits"] > 0, name


@pytest.mark.slow
def test_columnar_scan_full_size():
    """The acceptance bar: ≥1.5x on projection and aggregate scans."""
    entry = measure_columnar(rows=100_000, repeats=3)
    for name in ("projection", "aggregate"):
        workload = entry["workloads"][name]
        assert workload["identical_to_oracle"], name
        assert workload["speedup_median"] >= 1.5, (name, workload["speedup_median"])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, nargs="*", default=[10_000, 100_000])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)
    row_counts = [10_000] if args.quick else args.rows
    section = run_columnar(row_counts, repeats=args.repeats)
    if args.out is not None:
        args.out.write_text(json.dumps(section, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
