"""Experiment FT — recovery overhead of the fault-tolerant runtime (PR 6).

Measures what fault tolerance *costs* and what recovery *buys*:

1. **Healthy overhead.** The same workload with and without checkpointing
   enabled is the same code path (checkpoints are saved opportunistically at
   combine boundaries), so the healthy run's wall clock doubles as the
   zero-failure baseline.
2. **Recovery overhead.** The workload with 1 and 2 seeded random node kills
   (:meth:`~repro.runtime.faults.FailureInjector.random_node_kills`):
   wall-clock ratio vs. the healthy run, plus how many re-plans, in-place
   retries and checkpoint-restored tasks the recovery needed.  Every
   recovered run is differentially checked against the healthy result —
   an entry only counts if the rows are byte-identical.

``python benchmarks/bench_chaos.py`` prints a table;
``bench_runtime_scaling.py`` embeds the same measurements as the ``chaos``
section of ``BENCH_runtime.json``; tiny pytest configs below keep the quick
suite covering the path.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.common import summarize_samples  # noqa: E402
from benchmarks.bench_runtime_scaling import build_tree_processor  # noqa: E402
from repro.runtime import CostModel, FailureInjector  # noqa: E402

DEFAULT_COST = CostModel(seconds_per_row=2e-5, seconds_per_kb=1e-5)

#: A decomposable GROUP BY workload: the partial-aggregation protocol runs
#: (partial per leaf, combine per level, finalize), so checkpoints exist and
#: recovery has something to restore.
CHAOS_SQL = (
    "SELECT person_id, COUNT(*) AS n, AVG(z) AS avg_z "
    "FROM d GROUP BY person_id"
)

FANOUTS = (8, 16)
FAILURE_COUNTS = (0, 1, 2)


def _run_once(
    rows: int,
    n_sensors: int,
    cost_model: CostModel,
    n_failures: int,
    seed: int,
) -> Dict[str, Any]:
    """One fresh processor, one (possibly faulty) run, one differential check.

    The processor is rebuilt per run: a recovered death permanently degrades
    the shared topology, which would contaminate the next sample.
    """
    processor = build_tree_processor(rows, n_sensors, cost_model=cost_model)
    oracle = processor.process(
        CHAOS_SQL, "ActionFilter", execution="serial", apply_rewriting=False
    )
    faults = None
    if n_failures:
        faults = FailureInjector.random_node_kills(
            processor.topology, n_failures, seed=seed
        )
    started = time.perf_counter()
    result = processor.process(
        CHAOS_SQL,
        "ActionFilter",
        execution="parallel",
        apply_rewriting=False,
        faults=faults,
    )
    elapsed = time.perf_counter() - started
    identical = (
        result.result.schema.names == oracle.result.schema.names
        and result.result.rows == oracle.result.rows
    )
    return {
        "seconds": elapsed,
        "identical": identical,
        "replans": result.runtime.replans,
        "retried_attempts": result.runtime.retried_attempts,
        "restored_tasks": result.runtime.restored_tasks,
        "checkpoints_saved": result.runtime.checkpoints_saved,
        "checkpoint_bytes": result.runtime.checkpoint_bytes,
        "fired": len(faults.fired) if faults is not None else 0,
    }


def measure_chaos(
    rows: int,
    repeats: int,
    cost_model: CostModel = DEFAULT_COST,
    fanouts=FANOUTS,
    failure_counts=FAILURE_COUNTS,
) -> List[Dict[str, Any]]:
    """Recovery overhead per (fan-out, injected-failure-count) cell."""
    entries: List[Dict[str, Any]] = []
    for n_sensors in fanouts:
        healthy_median: Optional[float] = None
        for n_failures in failure_counts:
            runs = [
                _run_once(
                    rows,
                    n_sensors,
                    cost_model,
                    n_failures,
                    seed=17 * n_sensors + 7 * n_failures + repeat,
                )
                for repeat in range(repeats)
            ]
            assert all(run["identical"] for run in runs), (
                f"recovered run diverged from the serial oracle "
                f"(fanout={n_sensors}, failures={n_failures})"
            )
            samples = [run["seconds"] for run in runs]
            median = statistics.median(samples)
            if n_failures == 0:
                healthy_median = median
            entry = {
                "n_sensors": n_sensors,
                "rows": rows,
                "injected_failures": n_failures,
                "wall": summarize_samples(samples, rows=rows),
                "overhead_vs_healthy": (
                    round(median / healthy_median, 3) if healthy_median else None
                ),
                "replans_median": statistics.median(
                    run["replans"] for run in runs
                ),
                "retried_attempts_total": sum(
                    run["retried_attempts"] for run in runs
                ),
                "restored_tasks_total": sum(
                    run["restored_tasks"] for run in runs
                ),
                "checkpoints_saved_median": statistics.median(
                    run["checkpoints_saved"] for run in runs
                ),
                "checkpoint_bytes_median": statistics.median(
                    run["checkpoint_bytes"] for run in runs
                ),
                "faults_fired_total": sum(run["fired"] for run in runs),
            }
            entries.append(entry)
            overhead = entry["overhead_vs_healthy"]
            print(
                f"fanout {n_sensors:>2} failures {n_failures}: "
                f"{median * 1e3:8.1f}ms  "
                f"overhead {overhead if overhead is not None else 1.0:>5}x  "
                f"replans {entry['replans_median']:.0f}  "
                f"restored {entry['restored_tasks_total']}"
            )
    return entries


def run_chaos(
    rows: int = 1200,
    repeats: int = 3,
    cost_model: CostModel = DEFAULT_COST,
    fanouts=FANOUTS,
    failure_counts=FAILURE_COUNTS,
) -> Dict[str, Any]:
    """The ``chaos`` report section: recovery overhead grid + contract note."""
    return {
        "workload": CHAOS_SQL,
        "metric_note": "median wall seconds per (fanout, injected random node "
        "kills); every recovered run is asserted byte-identical to the "
        "serial oracle before it is counted",
        "entries": measure_chaos(
            rows,
            repeats,
            cost_model=cost_model,
            fanouts=fanouts,
            failure_counts=failure_counts,
        ),
    }


# ---------------------------------------------------------------------------
# pytest smoke configs (tiny; the quick suite keeps the path covered)
# ---------------------------------------------------------------------------


def test_chaos_recovery_overhead_smoke():
    entries = measure_chaos(
        rows=240,
        repeats=1,
        cost_model=CostModel(seconds_per_row=1e-5),
        fanouts=(8,),
        failure_counts=(0, 1),
    )
    assert len(entries) == 2
    healthy, faulty = entries
    assert healthy["injected_failures"] == 0
    assert faulty["faults_fired_total"] >= 0
    # The differential check already ran inside measure_chaos (identical
    # rows); here just confirm the overhead math is populated.
    assert faulty["overhead_vs_healthy"] is not None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=1200)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--quick", action="store_true", help="smaller rows/repeats for CI"
    )
    args = parser.parse_args(argv)
    rows = 400 if args.quick else args.rows
    repeats = 2 if args.quick else args.repeats
    report = run_chaos(rows=rows, repeats=repeats)
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
