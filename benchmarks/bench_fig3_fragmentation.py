"""Experiment F3 — Figure 3: vertical query fragmentation and data reduction.

Figure 3 shows the query travelling down the peer chain and only the reduced
result d' travelling back up to the cloud.  This benchmark measures, for
increasing amounts of raw sensor data, how many rows and bytes cross each hop
and in particular how much leaves the apartment, with pushdown enabled vs the
cloud-only baseline.  The shape claimed by the paper is that the pushed-down
variant ships orders of magnitude less data to the cloud.
"""

from __future__ import annotations

import pytest

from benchmarks.common import PAPER_SQL, build_processor, print_table

SIZES = (500, 2000, 8000)


@pytest.mark.benchmark(group="fig3-pushdown")
@pytest.mark.parametrize("rows", SIZES)
def test_bench_pushdown_execution(benchmark, rows):
    processor = build_processor(rows)
    result = benchmark.pedantic(
        processor.process,
        args=(PAPER_SQL, "ActionFilter"),
        kwargs={"anonymize": False},
        rounds=2,
        iterations=1,
    )
    assert result.admitted
    assert result.rows_leaving_apartment <= rows


def test_fig3_transfer_series():
    """The per-hop transfer series the figure implies (printed with -s)."""
    rows_report = []
    for rows in SIZES:
        processor = build_processor(rows)
        pushdown = processor.process(PAPER_SQL, "ActionFilter", anonymize=False)
        baseline = processor.process(
            PAPER_SQL, "ActionFilter", pushdown=False, apply_rewriting=False, anonymize=False
        )
        reduction = (
            baseline.rows_leaving_apartment / pushdown.rows_leaving_apartment
            if pushdown.rows_leaving_apartment
            else float("inf")
        )
        rows_report.append(
            {
                "raw rows (d)": rows,
                "to cloud w/o PArADISE": baseline.rows_leaving_apartment,
                "to cloud with PArADISE (d')": pushdown.rows_leaving_apartment,
                "reduction": f"x{reduction:.0f}" if reduction != float("inf") else "all local",
                "bytes w/o": baseline.bytes_leaving_apartment,
                "bytes with": pushdown.bytes_leaving_apartment,
            }
        )
        # The paper's qualitative claim: d' is a small subset of d.
        assert pushdown.rows_leaving_apartment < baseline.rows_leaving_apartment
    print_table(
        "Figure 3 — data leaving the apartment (d vs d')",
        rows_report,
        [
            "raw rows (d)",
            "to cloud w/o PArADISE",
            "to cloud with PArADISE (d')",
            "reduction",
            "bytes w/o",
            "bytes with",
        ],
    )


def test_fig3_per_hop_breakdown():
    """Per-hop transfer log for one run (sensor→appliance→pc→cloud)."""
    processor = build_processor(2000)
    result = processor.process(PAPER_SQL, "ActionFilter", anonymize=False)
    hops = result.transfers.by_hop()
    print_table(
        "Figure 3 — per-hop transfers",
        hops,
        ["source", "target", "relation", "rows", "bytes", "leaves_apartment"],
    )
    # Volume decreases monotonically towards the cloud.
    volumes = [hop["rows"] for hop in hops]
    assert volumes == sorted(volumes, reverse=True)
    assert hops[-1]["leaves_apartment"] is True
