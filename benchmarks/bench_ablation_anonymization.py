"""Experiment A2 (ablation) — anonymization algorithms and information loss.

Section 3.2: "there exists no one-size-fits-all solution"; the postprocessor
chooses between k-anonymity (tuple-wise), slicing (column-wise) and
differential privacy.  This ablation measures, for each algorithm and privacy
level, the information loss (Direct Distance ratio, KL divergence) and the
runtime — the privacy/utility "Golden Path" trade-off the paper describes.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table, synthetic_sensor_relation
from repro.anonymize import Anonymizer
from repro.metrics import average_equivalence_class_size, discernibility_metric

ROWS = 2000
QUASI_IDENTIFIERS = ["x", "y"]


@pytest.fixture(scope="module")
def relation():
    return synthetic_sensor_relation(ROWS, seed=3).drop(["activity"])


@pytest.mark.benchmark(group="ablation-anonymization")
@pytest.mark.parametrize("algorithm", ["k_anonymity", "slicing", "differential_privacy"])
def test_bench_algorithm(benchmark, relation, algorithm):
    anonymizer = Anonymizer(algorithm=algorithm, k=5, epsilon=1.0, seed=0)
    outcome = benchmark.pedantic(
        anonymizer.anonymize, args=(relation,), rounds=2, iterations=1
    )
    assert outcome.applied


@pytest.mark.benchmark(group="ablation-kanonymity-k")
@pytest.mark.parametrize("k", [2, 5, 10, 25])
def test_bench_kanonymity_privacy_level(benchmark, relation, k):
    anonymizer = Anonymizer(algorithm="k_anonymity", k=k)
    outcome = benchmark.pedantic(
        anonymizer.anonymize,
        args=(relation,),
        kwargs={"quasi_identifiers": QUASI_IDENTIFIERS},
        rounds=2,
        iterations=1,
    )
    assert outcome.applied


def test_ablation_information_loss_report(relation):
    rows = []
    for algorithm in ("none", "k_anonymity", "slicing", "differential_privacy"):
        anonymizer = Anonymizer(algorithm=algorithm, k=5, epsilon=1.0, seed=0)
        outcome = anonymizer.anonymize(relation, quasi_identifiers=QUASI_IDENTIFIERS)
        loss = outcome.information_loss
        rows.append(
            {
                "algorithm": algorithm,
                "DD ratio": f"{loss.direct_distance_ratio:.3f}" if loss else "0.000",
                "quality": f"{loss.quality:.3f}" if loss else "1.000",
                "KL mean": f"{loss.kl_divergence_mean:.3f}" if loss else "0.000",
                "suppressed": f"{loss.suppression_ratio:.2%}" if loss else "0.00%",
                "avg class size": round(
                    average_equivalence_class_size(outcome.relation, QUASI_IDENTIFIERS), 1
                ),
            }
        )
    print_table(
        "Ablation A2 — anonymization algorithms",
        rows,
        ["algorithm", "DD ratio", "quality", "KL mean", "suppressed", "avg class size"],
    )
    # The unprotected baseline loses nothing; every algorithm loses something.
    by_name = {row["algorithm"]: row for row in rows}
    assert by_name["none"]["DD ratio"] == "0.000"
    assert float(by_name["k_anonymity"]["DD ratio"]) > 0


def test_ablation_k_vs_utility_series(relation):
    """Higher k ⇒ every class holds at least k tuples ⇒ coarser releases."""
    from repro.anonymize import is_k_anonymous

    rows = []
    for k in (2, 5, 10, 25):
        outcome = Anonymizer(algorithm="k_anonymity", k=k).anonymize(
            relation, quasi_identifiers=QUASI_IDENTIFIERS
        )
        class_size = average_equivalence_class_size(outcome.relation, QUASI_IDENTIFIERS)
        rows.append(
            {
                "k": k,
                "avg class size": round(class_size, 1),
                "discernibility": discernibility_metric(outcome.relation, QUASI_IDENTIFIERS),
                "DD ratio": f"{outcome.information_loss.direct_distance_ratio:.3f}",
            }
        )
        # The k-anonymity guarantee itself (the privacy level) must hold, and
        # the average class can never be smaller than k.
        assert is_k_anonymous(outcome.relation, QUASI_IDENTIFIERS, k)
        assert class_size >= k
    print_table(
        "Ablation A2 — k vs utility", rows, ["k", "avg class size", "discernibility", "DD ratio"]
    )
