"""Experiment A1 (ablation) — pushdown on/off.

DESIGN.md calls out the central design choice of the paper: evaluating maximal
query parts as close to the sensors as possible.  The ablation compares three
configurations over the same workload and data:

* full PArADISE (rewrite + pushdown),
* rewrite only (policy enforced, but all data shipped to the cloud first),
* neither (the plain cloud service).
"""

from __future__ import annotations

import pytest

from benchmarks.common import PAPER_SQL, build_processor, print_table

ROWS = 4000

CONFIGURATIONS = {
    "rewrite + pushdown": {"apply_rewriting": True, "pushdown": True},
    "rewrite only": {"apply_rewriting": True, "pushdown": False},
    "no protection": {"apply_rewriting": False, "pushdown": False},
}


@pytest.mark.benchmark(group="ablation-pushdown")
@pytest.mark.parametrize("name", list(CONFIGURATIONS))
def test_bench_configuration(benchmark, name):
    processor = build_processor(ROWS)
    kwargs = dict(CONFIGURATIONS[name], anonymize=False)
    result = benchmark.pedantic(
        processor.process, args=(PAPER_SQL, "ActionFilter"), kwargs=kwargs, rounds=2, iterations=1
    )
    assert result.admitted


def test_ablation_pushdown_report():
    processor = build_processor(ROWS)
    rows = []
    measured = {}
    for name, kwargs in CONFIGURATIONS.items():
        result = processor.process(
            PAPER_SQL, "ActionFilter", anonymize=False, **kwargs
        )
        measured[name] = result
        rows.append(
            {
                "configuration": name,
                "rows to cloud": result.rows_leaving_apartment,
                "bytes to cloud": result.bytes_leaving_apartment,
                "work at cloud (rows in)": (
                    result.executions[-1].input_rows if kwargs["pushdown"] is False else 0
                ),
                "elapsed s": round(result.elapsed_seconds, 4),
            }
        )
    print_table(
        "Ablation A1 — pushdown on/off",
        rows,
        ["configuration", "rows to cloud", "bytes to cloud", "work at cloud (rows in)", "elapsed s"],
    )
    # Who wins and by what shape: full PArADISE ships the least, the plain
    # service ships everything.
    assert (
        measured["rewrite + pushdown"].rows_leaving_apartment
        < measured["rewrite only"].rows_leaving_apartment
        <= measured["no protection"].rows_leaving_apartment
    )
    assert measured["no protection"].rows_leaving_apartment == ROWS
