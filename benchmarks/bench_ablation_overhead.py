"""Experiment A3 (ablation) — rewriting / fragmentation overhead.

The paper argues the middleware is cheap relative to shipping raw data.  This
ablation measures the pure overhead of the PArADISE frontend — SQL parsing,
policy-driven rewriting and vertical fragmentation — as the query grows in
nesting depth and width, independent of data volume.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table
from repro.fragment import VerticalFragmenter
from repro.policy.presets import figure4_policy
from repro.rewrite import QueryRewriter
from repro.sql.parser import parse
from repro.sql.render import render


def nested_query(depth: int) -> str:
    """Build a query with ``depth`` nested SELECT levels over d."""
    sql = "SELECT x, y, z, t FROM d"
    for level in range(1, depth):
        sql = f"SELECT x, y, z, t FROM ({sql})"
    return (
        "SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) FROM (" + sql + ")"
    )


def wide_query(width: int) -> str:
    """Build a flat query with ``width`` projection expressions."""
    items = ", ".join(f"x + {i} AS c{i}" for i in range(width))
    return f"SELECT x, y, z, t, {items} FROM d WHERE x > y AND z < 2"


@pytest.mark.benchmark(group="overhead-parse")
@pytest.mark.parametrize("depth", [1, 4, 8])
def test_bench_parsing_depth(benchmark, depth):
    sql = nested_query(depth)
    query = benchmark(parse, sql)
    assert render(query)


@pytest.mark.benchmark(group="overhead-rewrite")
@pytest.mark.parametrize("depth", [1, 4, 8])
def test_bench_rewriting_depth(benchmark, depth):
    rewriter = QueryRewriter(figure4_policy())
    query = parse(nested_query(depth))
    result = benchmark(rewriter.rewrite, query, "ActionFilter")
    assert result.compliant


@pytest.mark.benchmark(group="overhead-fragment")
@pytest.mark.parametrize("depth", [1, 4, 8])
def test_bench_fragmentation_depth(benchmark, depth):
    rewriter = QueryRewriter(figure4_policy())
    rewritten = rewriter.rewrite(parse(nested_query(depth)), "ActionFilter")
    fragmenter = VerticalFragmenter()
    plan = benchmark(fragmenter.fragment, rewritten.query)
    assert len(plan.fragments) >= depth


@pytest.mark.benchmark(group="overhead-width")
@pytest.mark.parametrize("width", [4, 32, 128])
def test_bench_rewriting_width(benchmark, width):
    rewriter = QueryRewriter(figure4_policy())
    query = parse(wide_query(width))
    result = benchmark(rewriter.rewrite, query, "ActionFilter")
    assert result.compliant


def test_overhead_report():
    rows = []
    for depth in (1, 2, 4, 8):
        sql = nested_query(depth)
        rewriter = QueryRewriter(figure4_policy())
        rewritten = rewriter.rewrite(parse(sql), "ActionFilter")
        plan = VerticalFragmenter().fragment(rewritten.query)
        rows.append(
            {
                "nesting depth": depth + 1,
                "query chars": len(sql),
                "fragments": len(plan.fragments),
                "rewrite actions": len(rewritten.report.actions),
            }
        )
    print_table(
        "Ablation A3 — frontend overhead vs query size",
        rows,
        ["nesting depth", "query chars", "fragments", "rewrite actions"],
    )
    assert rows[-1]["fragments"] >= rows[0]["fragments"]
