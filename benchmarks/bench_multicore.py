"""Experiment MC — process-parallel execution on a compute-bound workload.

The thread scheduler overlaps *simulated* latencies well but is GIL-capped
on real compute; the ``workers="processes"`` backend (PR 8) dispatches
engine operations to spawned worker processes through the wire codec.  This
benchmark measures what that buys on honest wall clock: a decomposable
GROUP-BY over a 4-sensor tree with **cost-model sleeps disabled**
(``cost_model=None`` — no simulated node or link charges), so the only
thing left to overlap is Python compute itself.

The thread backend is the baseline; the process backend runs at 1/2/4
workers.  Every measured run is differential-checked in-loop against the
serial oracle — a fast-but-wrong backend fails the benchmark, not just the
test suite.  The report records ``os.cpu_count()`` because the headline
speedup is hardware-bound: on a single-core host the process backend can
only show its IPC overhead (the differential still must hold); the >1.5x
acceptance bar applies on hosts with >= 4 cores.

``benchmarks/run_all.py`` folds the report into ``BENCH_runtime.json`` as
the ``multicore`` section.
"""

from __future__ import annotations

import os
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Sequence

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.common import (  # noqa: E402
    print_table,
    summarize_samples,
    synthetic_sensor_relation,
)
from repro.fragment.topology import Topology  # noqa: E402
from repro.policy.presets import figure4_policy  # noqa: E402
from repro.processor.paradise import ParadiseProcessor  # noqa: E402

#: Decomposable aggregation: every aggregate splits into per-sensor partial
#: states, so the 4 leaf PartialAggregateTasks carry the compute and can
#: genuinely overlap across processes.
MULTICORE_SQL = (
    "SELECT x, COUNT(*) AS n, AVG(y) AS avg_y, STDDEV(y) AS sd_y, "
    "AVG(z) AS avg_z, VAR_POP(z) AS var_z, MIN(t) AS t_min, MAX(t) AS t_max "
    "FROM d GROUP BY x"
)

WORKER_COUNTS = (1, 2, 4)


def build_multicore_processor(
    rows: int, workers: str = "threads", process_workers: int = 2
) -> ParadiseProcessor:
    """A 4-sensor tree with *no* cost model: wall clock measures compute only."""
    processor = ParadiseProcessor(
        figure4_policy(),
        topology=Topology.smart_home_tree(n_sensors=4, sensors_per_appliance=4),
        schema=None,
        cost_model=None,
        workers=workers,
        process_workers=process_workers,
    )
    processor.load_data(synthetic_sensor_relation(rows))
    return processor


def _time_backend(
    processor: ParadiseProcessor, repeats: int, oracle_rows
) -> List[float]:
    """Warm up, then time ``repeats`` runs, differential-checking each one."""
    result = processor.process(
        MULTICORE_SQL, "fig4", execution="parallel", apply_rewriting=False
    )
    assert result.result is not None and result.result.rows == oracle_rows
    samples: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        result = processor.process(
            MULTICORE_SQL, "fig4", execution="parallel", apply_rewriting=False
        )
        samples.append(time.perf_counter() - started)
        assert result.result.rows == oracle_rows, "backend diverged from oracle"
    return samples


def run_multicore(
    rows: int = 6000,
    repeats: int = 3,
    worker_counts: Sequence[int] = WORKER_COUNTS,
) -> Dict[str, Any]:
    """Thread baseline vs 1/2/4 process workers on the compute-bound workload."""
    oracle = build_multicore_processor(rows).process(
        MULTICORE_SQL, "fig4", execution="serial", apply_rewriting=False
    )
    assert oracle.result is not None
    oracle_rows = oracle.result.rows

    threads = _time_backend(build_multicore_processor(rows), repeats, oracle_rows)
    threads_median = statistics.median(threads)

    entries: List[Dict[str, Any]] = []
    for workers in worker_counts:
        processor = build_multicore_processor(
            rows, workers="processes", process_workers=workers
        )
        samples = _time_backend(processor, repeats, oracle_rows)
        dispatcher = processor._dispatcher
        entry = {
            "process_workers": workers,
            "wall": summarize_samples(samples, rows=rows),
            "speedup_vs_threads": round(
                threads_median / statistics.median(samples), 3
            ),
            "jobs_dispatched": dispatcher.jobs if dispatcher else 0,
            "wire_bytes_out": dispatcher.bytes_out if dispatcher else 0,
        }
        entries.append(entry)
        print(
            f"multicore {workers} workers: "
            f"{statistics.median(samples) * 1e3:8.1f}ms  "
            f"({entry['speedup_vs_threads']:.2f}x vs threads)"
        )

    best = max(entries, key=lambda e: e["speedup_vs_threads"])
    cpus = os.cpu_count() or 1
    return {
        "query": MULTICORE_SQL,
        "rows": rows,
        "repeats": repeats,
        "cpu_count": cpus,
        "metric_note": "wall seconds, cost model disabled (no simulated "
        "sleeps); every measured run differential-checked against the "
        "serial oracle; the >1.5x bar is hardware-bound (needs >= 4 cores)",
        "threads_baseline": summarize_samples(threads, rows=rows),
        "process_backend": entries,
        "best_speedup_vs_threads": best["speedup_vs_threads"],
        "bar_applicable": cpus >= 4,
        "meets_bar": best["speedup_vs_threads"] > 1.5,
    }


# ---------------------------------------------------------------------------
# pytest smoke benchmarks (tiny configs; run in the quick suite)
# ---------------------------------------------------------------------------


@pytest.mark.procs
def test_multicore_backends_agree_with_oracle():
    """Small pool, small rows: the in-loop differential is the contract."""
    report = run_multicore(rows=400, repeats=1, worker_counts=(2,))
    assert report["process_backend"][0]["jobs_dispatched"] > 0
    assert report["process_backend"][0]["wire_bytes_out"] > 0


@pytest.mark.procs
@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the >1.5x multicore bar needs >= 4 cores",
)
def test_multicore_speedup_bar():
    """The acceptance bar: >1.5x real wall clock at 4 process workers."""
    report = run_multicore(rows=12000, repeats=3, worker_counts=(4,))
    assert report["process_backend"][0]["speedup_vs_threads"] > 1.5


def main() -> int:
    report = run_multicore()
    print_table(
        "multicore (cost model off, differential-checked)",
        [
            {
                "workers": entry["process_workers"],
                "median_ms": round(entry["wall"]["median_s"] * 1e3, 1),
                "speedup_vs_threads": entry["speedup_vs_threads"],
                "jobs": entry["jobs_dispatched"],
                "wire_KiB": round(entry["wire_bytes_out"] / 1024, 1),
            }
            for entry in report["process_backend"]
        ],
        ["workers", "median_ms", "speedup_vs_threads", "jobs", "wire_KiB"],
    )
    print(
        f"cpus: {report['cpu_count']}, best speedup "
        f"{report['best_speedup_vs_threads']:.2f}x "
        f"({'meets' if report['meets_bar'] else 'below'} the 1.5x bar"
        f"{'' if report['bar_applicable'] else ', bar needs >= 4 cores'})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
