"""Experiment T1 — Table 1: capability classes E1-E4 and operator placement.

The paper's Table 1 maps each level of the vertical architecture to the SQL
dialect it can execute.  This benchmark (a) regenerates the table, (b) checks
for a catalogue of query features which level each lands on, and (c) measures
how long the placement decision (feature analysis + capability lookup) takes.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table
from repro.fragment.capabilities import (
    CAPABILITY_LEVELS,
    capability_table,
    lowest_capable_level,
)
from repro.sql.analysis import analyze_query
from repro.sql.parser import parse

#: One representative query per capability row of Table 1.
FEATURE_QUERIES = {
    "constant filter (sensor)": "SELECT * FROM stream WHERE z < 2",
    "attribute comparison": "SELECT x, y, z, t FROM d1 WHERE x > y",
    "projection": "SELECT x, y FROM d1",
    "join": "SELECT a.x FROM ubisense a JOIN sensfloor b ON a.t = b.t",
    "grouping + HAVING": "SELECT x, y, AVG(z) AS zAVG, t FROM d2 GROUP BY x, y HAVING SUM(z) > 100",
    "window function": "SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t) FROM d3",
    "subquery": "SELECT x FROM d WHERE t IN (SELECT t FROM d2)",
    "set operation": "SELECT x FROM a UNION SELECT x FROM b",
}

EXPECTED_LEVEL = {
    "constant filter (sensor)": "E4",
    "attribute comparison": "E3",
    "projection": "E3",
    "join": "E3",
    "grouping + HAVING": "E3",
    "window function": "E2",
    "subquery": "E2",
    "set operation": "E2",
}


def placement_rows():
    rows = []
    for label, sql in FEATURE_QUERIES.items():
        features = analyze_query(parse(sql))
        level = lowest_capable_level(features)
        rows.append(
            {
                "query feature": label,
                "placed on": level.short_name,
                "system": CAPABILITY_LEVELS[level].system,
            }
        )
    return rows


def test_table1_capability_rows_match_paper():
    """The regenerated Table 1 must have the paper's four rows."""
    table = capability_table()
    assert [row["level"] for row in table] == ["E1", "E2", "E3", "E4"]
    print_table("Table 1 — capability classes", table, ["level", "system", "capability", "nodes"])


def test_operator_placement_matches_expectations():
    rows = placement_rows()
    print_table("Table 1 — operator placement", rows, ["query feature", "placed on", "system"])
    placed = {row["query feature"]: row["placed on"] for row in rows}
    assert placed == EXPECTED_LEVEL


@pytest.mark.benchmark(group="table1")
def test_bench_placement_decision(benchmark):
    """Latency of the placement decision for the full feature catalogue."""
    parsed = [parse(sql) for sql in FEATURE_QUERIES.values()]

    def place_all():
        return [lowest_capable_level(analyze_query(query)) for query in parsed]

    levels = benchmark(place_all)
    assert len(levels) == len(FEATURE_QUERIES)
