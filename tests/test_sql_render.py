"""Tests for SQL rendering (and parse→render→parse stability)."""

import pytest

from repro.sql import ast
from repro.sql.parser import parse, parse_expression
from repro.sql.render import render, render_expression


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT x, y FROM d",
        "SELECT * FROM stream WHERE z < 2",
        "SELECT x, y, AVG(z) AS zAVG, t FROM d GROUP BY x, y HAVING SUM(z) > 100",
        "SELECT REGR_INTERCEPT(y, x) OVER (PARTITION BY zAVG ORDER BY t) FROM d3",
        "SELECT DISTINCT x FROM d ORDER BY x DESC LIMIT 5 OFFSET 2",
        "SELECT a.x FROM d AS a INNER JOIN e AS b ON a.t = b.t",
        "SELECT x FROM d WHERE x IN (1, 2) AND y BETWEEN 0 AND 1",
        "SELECT CASE WHEN z < 1 THEN 'low' ELSE 'high' END FROM d",
        "SELECT x FROM d WHERE EXISTS (SELECT 1 FROM e)",
        "SELECT COUNT(*) FROM d",
        "SELECT x FROM a UNION SELECT x FROM b",
    ],
)
def test_render_is_reparseable_and_stable(sql):
    """render(parse(sql)) must parse again and reach a fixed point."""
    first = render(parse(sql))
    second = render(parse(first))
    assert first == second


def test_render_matches_paper_inner_query(paper_sql):
    rendered = render(parse(paper_sql))
    assert "REGR_INTERCEPT(y, x) OVER (PARTITION BY z ORDER BY t)" in rendered
    assert "FROM (SELECT x, y, z, t FROM d)" in rendered


def test_pretty_rendering_has_clause_lines():
    text = render(parse("SELECT x FROM d WHERE x > 1 ORDER BY x"), pretty=True)
    lines = text.splitlines()
    assert lines[0].startswith("SELECT")
    assert any(line.strip().startswith("WHERE") for line in lines)
    assert any(line.strip().startswith("ORDER BY") for line in lines)


def test_literal_rendering():
    assert render_expression(ast.Literal(None)) == "NULL"
    assert render_expression(ast.Literal(True)) == "TRUE"
    assert render_expression(ast.Literal("it's")) == "'it''s'"
    assert render_expression(ast.Literal(3)) == "3"


def test_operator_precedence_parentheses():
    expression = parse_expression("(a + b) * c")
    assert render_expression(expression) == "(a + b) * c"
    expression = parse_expression("a + b * c")
    assert render_expression(expression) == "a + b * c"


def test_boolean_precedence_parentheses():
    expression = parse_expression("(a OR b) AND c")
    rendered = render_expression(expression)
    assert rendered == "(a OR b) AND c"


def test_not_rendering():
    expression = parse_expression("NOT x > 1")
    rendered = render_expression(expression)
    assert rendered.startswith("NOT")
    # Must reparse to an equivalent structure.
    assert render_expression(parse_expression(rendered)) == rendered


def test_join_rendering_with_using():
    sql = "SELECT x FROM a INNER JOIN b USING (t)"
    assert render(parse(sql)) == sql


def test_window_frame_rendering():
    sql = (
        "SELECT SUM(z) OVER (ORDER BY t ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) FROM d"
    )
    rendered = render(parse(sql))
    assert "ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW" in rendered


def test_set_operation_rendering_with_all():
    rendered = render(parse("SELECT x FROM a UNION ALL SELECT x FROM b"))
    assert "UNION ALL" in rendered
