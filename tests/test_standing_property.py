"""Seeded-random property tests for the standing-query delta algebra.

The incremental refresh path (:mod:`repro.runtime.standing`) is correct
only if the partial-state protocol really is a delta algebra: feeding rows
through *any* partition into append-order deltas — empty deltas, single-row
deltas, NULL-heavy runs — then merging the per-delta partial states in
order must finalize **identically** (``repr`` equality, so ``True`` never
degrades to ``1`` and ``-0.0`` keeps its sign) to accumulating every row in
one shot.  The property is checked at two levels:

* every mergeable accumulator directly (including ``COUNT(*)``), over the
  full value vocabulary (bigints past 2**63, extreme floats, strings for
  MIN/MAX, heavy NULL mixes);
* end-to-end through :class:`StandingQueryRuntime`: random row batches
  split into random per-leaf deltas must keep every registered handle
  byte-identical to from-scratch re-execution at every epoch.

Everything is seeded with :class:`random.Random` — a failure reproduces.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional

import pytest

from repro.engine.aggregates import DECOMPOSABLE_AGGREGATES, make_accumulator
from repro.engine.table import Relation
from repro.engine.wire import pack_state_relation
from repro.fragment.topology import Topology
from repro.policy.presets import figure4_policy
from repro.processor.paradise import ParadiseProcessor
from repro.runtime import StandingQueryRuntime

pytestmark = pytest.mark.standing

SEEDS = [3, 17, 257, 9001]


# ---------------------------------------------------------------------------
# accumulator-level property
# ---------------------------------------------------------------------------


def random_values(rng: random.Random, count: int, strings: bool) -> List[Any]:
    """A NULL-heavy mix from the accumulator input vocabulary."""
    values: List[Any] = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.3:
            values.append(None)
        elif strings:
            values.append("".join(rng.choice("abcdef") for _ in range(3)))
        elif roll < 0.5:
            values.append(rng.randint(-(2**70), 2**70))
        elif roll < 0.6:
            values.append(rng.choice([1e300, -1e300, 1e-300, -0.0, 0.1, 0.2]))
        else:
            values.append(rng.uniform(-1e6, 1e6))
    return values


def random_partition(rng: random.Random, values: List[Any]) -> List[List[Any]]:
    """Split ``values`` into append-order deltas, empties included."""
    deltas: List[List[Any]] = [[]]  # always exercise a leading empty delta
    position = 0
    empties = 0
    while position < len(values):
        size = rng.choice([0, 1, 1, rng.randint(2, 6)])
        if size == 0 and empties < 4:
            empties += 1
            deltas.append([])
            continue
        size = max(size, 1)
        deltas.append(values[position : position + size])
        position += size
    deltas.append([])  # and a trailing one
    return deltas


def finalized_repr(accumulator) -> str:
    try:
        return repr(accumulator.finalize())
    except OverflowError as error:
        # Extreme inputs can overflow float in finalize(); the property is
        # that split and one-shot behave *identically*, including raising.
        return f"OverflowError: {error}"


@pytest.mark.parametrize("seed", SEEDS)
def test_any_delta_partition_finalizes_like_one_shot(seed):
    rng = random.Random(seed)
    functions = sorted(DECOMPOSABLE_AGGREGATES) + ["COUNT(*)"]
    for trial in range(30):
        name = functions[trial % len(functions)]
        is_star = name == "COUNT(*)"
        function = "COUNT" if is_star else name
        strings = function in ("MIN", "MAX") and rng.random() < 0.5
        values = random_values(rng, rng.randint(0, 24), strings)

        one_shot = make_accumulator(
            function, is_star=is_star, distinct=False, arg_count=1
        )
        for value in values:
            one_shot.add((1,) if is_star else (value,))

        merged = make_accumulator(
            function, is_star=is_star, distinct=False, arg_count=1
        )
        for delta in random_partition(rng, values):
            partial = make_accumulator(
                function, is_star=is_star, distinct=False, arg_count=1
            )
            for value in delta:
                partial.add((1,) if is_star else (value,))
            merged.merge(partial.partial())

        # Note: the *states* need not repr-match — a Shewchuk expansion's
        # component split depends on add/merge grouping while denoting the
        # same exact real — only the finalized value is canonical.
        assert finalized_repr(merged) == finalized_repr(one_shot), (seed, name)

        # And a state handed on once more (leaf -> level combine) still
        # finalizes identically: merge is associative on the nose.
        relay = make_accumulator(
            function, is_star=is_star, distinct=False, arg_count=1
        )
        relay.merge(merged.partial())
        assert finalized_repr(relay) == finalized_repr(one_shot), (seed, name)


# ---------------------------------------------------------------------------
# runtime-level property
# ---------------------------------------------------------------------------

PROPERTY_QUERIES = [
    "SELECT g, COUNT(*) AS n, SUM(v) AS sv, AVG(v) AS av FROM d GROUP BY g",
    "SELECT g, MIN(v) AS lo, MAX(v) AS hi FROM d GROUP BY g "
    "HAVING COUNT(*) > 1 ORDER BY COUNT(*) DESC",
    "SELECT g, STDDEV(v) AS s, VAR_POP(v) AS vp FROM d WHERE w >= 0 GROUP BY g",
]


def random_rows(rng: random.Random, count: int) -> List[dict]:
    rows = []
    for _ in range(count):
        value: Optional[float]
        roll = rng.random()
        if roll < 0.35:
            value = None  # NULL-heavy: aggregates must skip, COUNT(*) must not
        elif roll < 0.6:
            value = float(rng.randint(-50, 50))
        else:
            value = round(rng.uniform(-10.0, 10.0), 3)
        rows.append(
            {
                "g": rng.choice(["a", "b", "c", "d"]),
                "v": value,
                "w": rng.choice([-1.0, 0.0, 1.0, None]),
            }
        )
    return rows


@pytest.mark.parametrize("seed", SEEDS)
def test_random_deltas_keep_every_handle_byte_identical(seed):
    rng = random.Random(seed)
    topology = Topology.smart_home_tree(n_sensors=4, sensors_per_appliance=2)
    processor = ParadiseProcessor(figure4_policy(), topology=topology, schema=None)
    processor.load_data(Relation.from_rows(random_rows(rng, 40), name="d"))
    runtime = StandingQueryRuntime(processor)
    handles = [runtime.register(sql) for sql in PROPERTY_QUERIES]
    holders = processor.network.partition_holders("d")

    for _ in range(6):
        size = rng.choice([0, 1, 1, rng.randint(2, 12)])
        # Raw reading dicts, not a Relation: exercises the ingestion path
        # that builds the delta against the leaf's registered schema.
        runtime.append(rng.choice(holders), random_rows(rng, size))
        for handle in handles:
            assert pack_state_relation(handle.result()) == pack_state_relation(
                runtime.reexecute(handle)
            ), (seed, handle.sql)
