"""Tests for the SQL tokenizer."""

import pytest

from repro.sql.errors import LexerError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def types_and_values(sql):
    return [(t.type, t.value) for t in tokenize(sql) if t.type is not TokenType.EOF]


def test_keywords_are_uppercased():
    tokens = types_and_values("select From whERE")
    assert tokens == [
        (TokenType.KEYWORD, "SELECT"),
        (TokenType.KEYWORD, "FROM"),
        (TokenType.KEYWORD, "WHERE"),
    ]


def test_identifiers_preserve_case():
    tokens = types_and_values("zAVG")
    assert tokens == [(TokenType.IDENTIFIER, "zAVG")]


def test_numbers_integer_and_float():
    tokens = types_and_values("42 3.14 1e6 2.5E-3")
    assert [value for _, value in tokens] == ["42", "3.14", "1e6", "2.5E-3"]
    assert all(kind is TokenType.NUMBER for kind, _ in tokens)


def test_string_literal_with_escaped_quote():
    tokens = types_and_values("'it''s'")
    assert tokens == [(TokenType.STRING, "it's")]


def test_unterminated_string_raises():
    with pytest.raises(LexerError):
        tokenize("SELECT 'oops")


def test_quoted_identifier():
    tokens = types_and_values('"weird name"')
    assert tokens == [(TokenType.IDENTIFIER, "weird name")]


def test_multi_char_operators():
    tokens = types_and_values("a <> b >= c <= d != e || f")
    operators = [value for kind, value in tokens if kind is TokenType.OPERATOR]
    assert operators == ["<>", ">=", "<=", "!=", "||"]


def test_single_char_operators_and_punctuation():
    tokens = types_and_values("(a + b) * 2, c;")
    kinds = [kind for kind, _ in tokens]
    assert TokenType.PUNCTUATION in kinds
    assert TokenType.OPERATOR in kinds


def test_line_comment_is_skipped():
    tokens = types_and_values("SELECT x -- comment here\nFROM d")
    values = [value for _, value in tokens]
    assert values == ["SELECT", "x", "FROM", "d"]


def test_block_comment_is_skipped():
    tokens = types_and_values("SELECT /* multi\nline */ x")
    values = [value for _, value in tokens]
    assert values == ["SELECT", "x"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexerError):
        tokenize("SELECT /* oops")


def test_unexpected_character_raises():
    with pytest.raises(LexerError):
        tokenize("SELECT #")


def test_positions_are_tracked():
    tokens = tokenize("SELECT\n  x")
    x_token = [t for t in tokens if t.value == "x"][0]
    assert x_token.line == 2
    assert x_token.column == 3


def test_eof_token_is_appended():
    tokens = tokenize("SELECT 1")
    assert tokens[-1].type is TokenType.EOF


def test_keyword_matching_helpers():
    token = tokenize("SELECT")[0]
    assert token.is_keyword("select")
    assert token.is_keyword("FROM", "SELECT")
    assert not token.is_keyword("FROM")
    assert token.matches(TokenType.KEYWORD, "select")
