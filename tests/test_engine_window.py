"""Tests for window function evaluation."""

import pytest

from repro.engine.database import Database


@pytest.fixture
def db():
    database = Database()
    database.load_rows(
        "d",
        [
            {"g": "a", "v": 1.0, "t": 1},
            {"g": "a", "v": 2.0, "t": 2},
            {"g": "a", "v": 3.0, "t": 3},
            {"g": "b", "v": 10.0, "t": 1},
            {"g": "b", "v": 20.0, "t": 2},
        ],
    )
    return database


def test_row_number(db):
    result = db.query("SELECT g, t, ROW_NUMBER() OVER (PARTITION BY g ORDER BY t) AS rn FROM d")
    by_key = {(row["g"], row["t"]): row["rn"] for row in result}
    assert by_key[("a", 1)] == 1
    assert by_key[("a", 3)] == 3
    assert by_key[("b", 2)] == 2


def test_rank_and_dense_rank_with_ties():
    db = Database()
    db.load_rows("d", [{"v": 1}, {"v": 1}, {"v": 2}])
    result = db.query(
        "SELECT v, RANK() OVER (ORDER BY v) AS r, DENSE_RANK() OVER (ORDER BY v) AS dr FROM d"
    )
    ranks = sorted((row["v"], row["r"], row["dr"]) for row in result)
    assert ranks == [(1, 1, 1), (1, 1, 1), (2, 3, 2)]


def test_cumulative_sum_with_order(db):
    result = db.query("SELECT g, t, SUM(v) OVER (PARTITION BY g ORDER BY t) AS cum FROM d")
    by_key = {(row["g"], row["t"]): row["cum"] for row in result}
    assert by_key[("a", 1)] == 1.0
    assert by_key[("a", 2)] == 3.0
    assert by_key[("a", 3)] == 6.0
    assert by_key[("b", 2)] == 30.0


def test_partition_aggregate_without_order(db):
    result = db.query("SELECT g, AVG(v) OVER (PARTITION BY g) AS m FROM d")
    values = {(row["g"], row["m"]) for row in result}
    assert ("a", 2.0) in values
    assert ("b", 15.0) in values


def test_lag_lead(db):
    result = db.query(
        "SELECT g, t, LAG(v) OVER (PARTITION BY g ORDER BY t) AS prev, "
        "LEAD(v) OVER (PARTITION BY g ORDER BY t) AS nxt FROM d"
    )
    by_key = {(row["g"], row["t"]): (row["prev"], row["nxt"]) for row in result}
    assert by_key[("a", 1)] == (None, 2.0)
    assert by_key[("a", 2)] == (1.0, 3.0)
    assert by_key[("b", 2)] == (10.0, None)


def test_first_and_last_value(db):
    result = db.query(
        "SELECT g, FIRST_VALUE(v) OVER (PARTITION BY g ORDER BY t) AS f, "
        "LAST_VALUE(v) OVER (PARTITION BY g ORDER BY t) AS l FROM d WHERE g = 'a'"
    )
    assert all(row["f"] == 1.0 and row["l"] == 3.0 for row in result)


def test_ntile(db):
    result = db.query("SELECT t, NTILE(2) OVER (ORDER BY t) AS bucket FROM d WHERE g = 'a'")
    buckets = [row["bucket"] for row in sorted(result.rows, key=lambda r: r["t"])]
    assert buckets == [1, 1, 2]


def test_regr_intercept_as_window_function():
    db = Database()
    db.load_rows(
        "d",
        [{"x": float(i), "y": 2.0 * i + 1.0, "t": i, "p": i % 2} for i in range(1, 9)],
    )
    result = db.query(
        "SELECT p, t, REGR_INTERCEPT(y, x) OVER (PARTITION BY p ORDER BY t) AS b FROM d"
    )
    final_rows = [row for row in result if row["t"] >= 7]
    assert all(row["b"] == pytest.approx(1.0) for row in final_rows)


def test_count_star_window(db):
    result = db.query("SELECT g, COUNT(*) OVER (PARTITION BY g) AS n FROM d")
    counts = {(row["g"], row["n"]) for row in result}
    assert ("a", 3) in counts and ("b", 2) in counts
