"""Integration test: the complete Section 4.2 walk-through of the paper.

This test reproduces the use case end to end over simulated Smart Meeting
Room data and checks every intermediate artefact the paper prints:

* the SQL extracted from the R analysis code,
* the rewritten query (conditions, GROUP BY, HAVING, zAVG renaming),
* the four staged queries and their placement on the node hierarchy,
* the residual R call executed at the cloud,
* the privacy effect: only the reduced, policy-compliant result d' leaves the
  apartment, and it satisfies the policy's constraints.
"""

import pytest

from repro import ParadiseProcessor, figure4_policy
from repro.fragment import CapabilityLevel, Topology, VerticalFragmenter
from repro.rewrite import QueryRewriter
from repro.rlang import extract_sql_from_r
from repro.sensors.scenario import INTEGRATED_SCHEMA
from tests.conftest import PAPER_R_CODE, make_sensor_relation


@pytest.fixture(scope="module")
def environment():
    relation = make_sensor_relation(rows=2000, seed=13, grid=1.0)
    processor = ParadiseProcessor(figure4_policy(), schema=INTEGRATED_SCHEMA)
    processor.load_data(relation)
    return relation, processor


def test_full_walkthrough(environment):
    relation, processor = environment

    # Step 1: SQLable-pattern extraction from the R code.
    extraction = extract_sql_from_r(PAPER_R_CODE)
    assert extraction.wrapper_function == "filterByClass"

    # Step 2: rewriting against the Figure 4 policy.
    rewriter = QueryRewriter(figure4_policy())
    rewritten = rewriter.rewrite(extraction.query, "ActionFilter")
    assert "WHERE x > y AND z < 2" in rewritten.sql
    assert "HAVING SUM(z) > 100" in rewritten.sql
    assert "PARTITION BY zAVG" in rewritten.sql

    # Step 3: vertical fragmentation matches the paper's staged queries.
    plan = VerticalFragmenter(Topology.default_chain()).fragment(rewritten.query)
    assert [f.level for f in plan.fragments] == [
        CapabilityLevel.E4_SENSOR,
        CapabilityLevel.E3_APPLIANCE,
        CapabilityLevel.E3_APPLIANCE,
        CapabilityLevel.E2_PC,
    ]
    assert plan.fragments[0].sql == "SELECT * FROM d WHERE z < 2"

    # Step 4: end-to-end execution over the simulated environment.
    result = processor.process_r(PAPER_R_CODE, module_id="ActionFilter")
    assert result.admitted
    assert result.remainder_call == "filterByClass(d_prime, action='walk', do.plot=F)"

    # Privacy effect: the data leaving the apartment is a small subset of d.
    assert result.raw_input_rows == len(relation)
    assert result.rows_leaving_apartment < result.raw_input_rows

    # The per-node execution shrinks the data monotonically towards the top
    # (after the appliance stage, which prunes columns and rows).
    outputs = [execution.output_rows for execution in result.executions]
    assert outputs[0] <= result.raw_input_rows
    assert outputs[-1] <= outputs[0]


def test_policy_constraints_hold_on_every_shipped_tuple(environment):
    relation, processor = environment
    result = processor.process(
        "SELECT x, y, z, t FROM d", module_id="ActionFilter", anonymize=False
    )
    assert result.admitted
    # Figure 4: x > y at any time; z only as AVG grouped by x, y with SUM(z) > 100.
    for row in result.result.rows:
        assert row["x"] > row["y"]
        assert "z" not in row
        assert "zAVG" in row

    # Verify the HAVING guard against the raw data: every surviving (x, y)
    # group really has SUM(z) > 100 among the policy-compliant readings.
    sums = {}
    for raw in relation.rows:
        if raw["x"] is None or raw["y"] is None or raw["z"] is None:
            continue
        if raw["x"] > raw["y"] and raw["z"] < 2:
            key = (raw["x"], raw["y"])
            sums[key] = sums.get(key, 0.0) + raw["z"]
    for row in result.result.rows:
        assert sums[(row["x"], row["y"])] > 100


def test_rewriting_disabled_baseline_reveals_more(environment):
    relation, processor = environment
    protected = processor.process("SELECT x, y, z, t FROM d", "ActionFilter", anonymize=False)
    unprotected = processor.process(
        "SELECT x, y, z, t FROM d",
        "ActionFilter",
        apply_rewriting=False,
        pushdown=True,
        anonymize=False,
    )
    assert unprotected.rows_leaving_apartment >= protected.rows_leaving_apartment
    assert "z" in unprotected.result.schema
    assert "z" not in protected.result.schema


def test_cloud_only_vs_pushdown_transfer_volume(environment):
    relation, processor = environment
    pushdown = processor.process("SELECT x, y, z, t FROM d", "ActionFilter", anonymize=False)
    cloud_only = processor.process(
        "SELECT x, y, z, t FROM d",
        "ActionFilter",
        pushdown=False,
        apply_rewriting=False,
        anonymize=False,
    )
    assert cloud_only.rows_leaving_apartment == len(relation)
    assert pushdown.bytes_leaving_apartment < cloud_only.bytes_leaving_apartment
    assert pushdown.data_reduction_ratio > cloud_only.data_reduction_ratio
