"""Tests for quasi-identifier detection and the anonymization algorithms."""

import pytest

from repro.anonymize import (
    Anonymizer,
    CategoricalHierarchy,
    KAnonymizer,
    LaplaceMechanism,
    NumericHierarchy,
    Slicer,
    detect_quasi_identifiers,
    generalize_value,
    is_k_anonymous,
    private_aggregate,
)
from repro.anonymize.dp import perturb_numeric_columns
from repro.anonymize.slicing import default_column_groups
from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Relation
from repro.engine.types import DataType
from tests.conftest import make_sensor_relation


# ---------------------------------------------------------------------------
# quasi-identifier detection
# ---------------------------------------------------------------------------


def test_schema_annotations_are_respected(sensor_relation):
    report = detect_quasi_identifiers(sensor_relation)
    assert "person_id" in report.identifying
    assert "x" in report.quasi_identifiers and "y" in report.quasi_identifiers
    assert "z" in report.sensitive
    assert "person_id" in report.protected_columns


def test_uniqueness_detection_flags_unique_columns():
    relation = Relation.from_rows(
        [{"idlike": i, "constant": 1} for i in range(50)]
    )
    report = detect_quasi_identifiers(relation, uniqueness_threshold=0.5)
    assert "idlike" in report.quasi_identifiers
    assert "constant" not in report.quasi_identifiers
    assert report.uniqueness["idlike"] == 1.0


def test_risky_combinations_detected():
    relation = Relation.from_rows(
        [{"a": i % 10, "b": i // 10, "c": 0} for i in range(100)]
    )
    report = detect_quasi_identifiers(relation, combination_threshold=0.9)
    assert ("a", "b") in report.risky_combinations
    assert "a" in report.quasi_identifiers and "b" in report.quasi_identifiers


def test_exclude_columns():
    relation = Relation.from_rows([{"t": i} for i in range(20)])
    report = detect_quasi_identifiers(relation, exclude=["t"])
    assert report.quasi_identifiers == []


# ---------------------------------------------------------------------------
# hierarchies
# ---------------------------------------------------------------------------


def test_numeric_hierarchy_levels():
    hierarchy = NumericHierarchy(minimum=0, maximum=10, base_width=1.0, levels=3)
    assert hierarchy.generalize(3.4, 0) == 3.4
    assert hierarchy.generalize(3.4, 1) == "[3,4)"
    assert hierarchy.generalize(3.4, 2) == "[2,4)"
    assert hierarchy.generalize(3.4, 3) == "*"
    assert hierarchy.generalize(None, 1) is None
    built = NumericHierarchy.from_values([0.0, 8.0], base_bins=8)
    assert built.base_width == pytest.approx(1.0)


def test_categorical_hierarchy():
    hierarchy = CategoricalHierarchy(
        taxonomy={"walk": ["moving", "any"], "sit": ["resting", "any"]}
    )
    assert hierarchy.generalize("walk", 0) == "walk"
    assert hierarchy.generalize("walk", 1) == "moving"
    assert hierarchy.generalize("walk", 2) == "any"
    assert hierarchy.generalize("walk", 3) == "*"
    assert hierarchy.generalize("unknown", 1) == "*"
    assert hierarchy.max_level == 3


def test_generalize_value_without_hierarchy():
    assert generalize_value(1.23456, 0) == 1.23456
    assert generalize_value(1.23456, 1) == 1.23
    assert generalize_value(1.23456, 3) == 1.0
    assert generalize_value("text", 1) == "*"
    assert generalize_value(None, 2) is None


# ---------------------------------------------------------------------------
# k-anonymity
# ---------------------------------------------------------------------------


def test_k_anonymizer_produces_k_anonymous_output():
    relation = make_sensor_relation(rows=300, seed=1)
    result = KAnonymizer(k=5).anonymize(relation, ["x", "y"])
    assert result.satisfied
    assert is_k_anonymous(result.relation, ["x", "y"], 5)
    assert len(result.relation) + result.suppressed_rows == len(relation)
    assert result.partitions >= 1


def test_k_anonymizer_preserves_non_qi_columns():
    relation = make_sensor_relation(rows=100, seed=2)
    result = KAnonymizer(k=4).anonymize(relation, ["x", "y"])
    for original, anonymized in zip(relation.rows, result.relation.rows):
        assert anonymized["t"] == original["t"]
        assert anonymized["z"] == original["z"]


def test_k_anonymizer_trivial_cases():
    relation = make_sensor_relation(rows=6, seed=3)
    # Without quasi-identifiers nothing changes.
    unchanged = KAnonymizer(k=3).anonymize(relation, [])
    assert unchanged.relation.to_dicts() == relation.to_dicts()
    # k larger than the relation: the single undersized partition is suppressed
    # (6 identical rows can never satisfy k=10).
    result = KAnonymizer(k=10).anonymize(relation, ["x"])
    assert len(result.relation) == 0
    assert result.suppressed_rows == 6
    # Without suppression the rows survive fully generalized instead.
    kept = KAnonymizer(k=10, suppress_small_groups=False).anonymize(relation, ["x"])
    assert len(kept.relation) == 6
    assert len({row["x"] for row in kept.relation}) == 1


def test_k_anonymizer_rejects_invalid_k():
    with pytest.raises(ValueError):
        KAnonymizer(k=0)


def test_is_k_anonymous_detects_violations():
    relation = Relation.from_rows([{"q": 1}, {"q": 1}, {"q": 2}])
    assert is_k_anonymous(relation, ["q"], 1)
    assert not is_k_anonymous(relation, ["q"], 2)
    assert is_k_anonymous(Relation.from_rows([]), ["q"], 5)


# ---------------------------------------------------------------------------
# slicing
# ---------------------------------------------------------------------------


def test_slicing_preserves_marginals_but_breaks_association():
    relation = make_sensor_relation(rows=200, seed=4)
    groups = [["x", "y"], ["z"]]
    result = Slicer(bucket_size=10, seed=0).anonymize(relation, groups, sort_by="t")
    assert len(result.relation) == len(relation)
    # Marginal multisets of each column are preserved.
    for column in ("x", "y", "z"):
        assert sorted(
            v for v in result.relation.column_values(column) if v is not None
        ) == sorted(v for v in relation.column_values(column) if v is not None)
    # But the per-row association with z changed for a noticeable share of rows.
    changed = sum(
        1
        for before, after in zip(
            sorted(relation.to_dicts(), key=lambda r: r["t"]),
            result.relation.to_dicts(),
        )
        if before["z"] != after["z"]
    )
    assert changed > len(relation) * 0.3


def test_slicing_keeps_column_group_intact():
    relation = make_sensor_relation(rows=60, seed=5)
    pairs_before = {(row["x"], row["y"]) for row in relation.rows}
    result = Slicer(bucket_size=6, seed=1).anonymize(relation, [["x", "y"]])
    pairs_after = {(row["x"], row["y"]) for row in result.relation.rows}
    assert pairs_after == pairs_before


def test_slicer_validation_and_default_groups(sensor_relation):
    with pytest.raises(ValueError):
        Slicer(bucket_size=1)
    groups = default_column_groups(sensor_relation, ["x", "y"], ["z", "x"])
    assert groups == [["x", "y"], ["z"]]


# ---------------------------------------------------------------------------
# differential privacy
# ---------------------------------------------------------------------------


def test_laplace_mechanism_parameters():
    mechanism = LaplaceMechanism(epsilon=2.0, sensitivity=4.0, seed=0)
    assert mechanism.scale == 2.0
    values = [mechanism.noise() for _ in range(200)]
    assert abs(sum(values) / len(values)) < 1.0
    with pytest.raises(ValueError):
        LaplaceMechanism(epsilon=0)
    with pytest.raises(ValueError):
        LaplaceMechanism(sensitivity=0)


def test_private_aggregates_are_close_for_large_epsilon():
    values = [1.0] * 100
    assert private_aggregate(values, "count", epsilon=100, seed=1) == pytest.approx(100, abs=2)
    assert private_aggregate(values, "sum", epsilon=100, seed=1) == pytest.approx(100, abs=2)
    assert private_aggregate(values, "avg", epsilon=100, seed=1) == pytest.approx(1.0, abs=0.2)
    assert private_aggregate([], "avg") == 0.0
    with pytest.raises(ValueError):
        private_aggregate(values, "median")


def test_perturb_numeric_columns_changes_values_but_not_shape(sensor_relation):
    perturbed = perturb_numeric_columns(sensor_relation, ["z"], epsilon=1.0, seed=7)
    assert len(perturbed) == len(sensor_relation)
    before = sensor_relation.column_values("z")
    after = perturbed.column_values("z")
    assert any(a != b for a, b in zip(before, after))
    # Non-selected columns untouched.
    assert perturbed.column_values("x") == sensor_relation.column_values("x")


# ---------------------------------------------------------------------------
# postprocessor façade
# ---------------------------------------------------------------------------


def test_anonymizer_kanonymity_outcome(sensor_relation):
    outcome = Anonymizer(algorithm="k_anonymity", k=5).anonymize(sensor_relation)
    assert outcome.applied
    assert outcome.information_loss is not None
    assert outcome.information_loss.direct_distance > 0
    assert is_k_anonymous(
        outcome.relation,
        [c for c in ("x", "y") if c in outcome.relation.schema],
        5,
    )
    assert "k_anonymity" in outcome.summary()


def test_anonymizer_defers_on_weak_nodes(sensor_relation):
    outcome = Anonymizer(algorithm="k_anonymity", minimum_cpu_power=1.0).anonymize(
        sensor_relation, node_cpu_power=0.1
    )
    assert not outcome.applied
    assert outcome.relation is sensor_relation


def test_anonymizer_algorithm_choice(sensor_relation):
    anonymizer = Anonymizer(k=5)
    assert anonymizer.choose_algorithm(sensor_relation, aggregated=False) == "slicing"
    small = Relation(schema=sensor_relation.schema, rows=sensor_relation.to_dicts()[:3])
    assert anonymizer.choose_algorithm(small, aggregated=True) == "differential_privacy"
    assert anonymizer.choose_algorithm(sensor_relation, aggregated=True) == "k_anonymity"


def test_anonymizer_unknown_algorithm_rejected():
    with pytest.raises(ValueError):
        Anonymizer(algorithm="rot13")


def test_anonymizer_none_and_empty_input(sensor_relation):
    assert not Anonymizer(algorithm="none").anonymize(sensor_relation).applied
    empty = Relation(schema=sensor_relation.schema, rows=[])
    assert not Anonymizer().anonymize(empty).applied


def test_anonymizer_differential_privacy_and_slicing_paths(sensor_relation):
    dp = Anonymizer(algorithm="differential_privacy", epsilon=2.0, seed=0).anonymize(
        sensor_relation
    )
    assert dp.applied
    assert dp.information_loss.kl_divergence_mean >= 0
    sliced = Anonymizer(algorithm="slicing", k=5, seed=0).anonymize(sensor_relation)
    assert sliced.applied
    assert len(sliced.relation) == len(sensor_relation)
