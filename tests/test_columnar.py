"""Columnar storage contract and differential suite.

Two contracts are enforced here:

1. **RowView compatibility.**  The columnar :class:`Relation` must behave
   exactly like the former ``List[Dict]`` container for every row-oriented
   consumer: live mapping views, write-through mutation, append/extend,
   equality with plain dict lists, and defensive isolation on
   ``Database.register``.

2. **Byte-identical execution.**  Construction route (dict rows vs column
   arrays), engine mode (compiled vs interpreted oracle) and scan path
   (vectorized vs row-at-a-time) must all be invisible in the results —
   across the fig2 pipeline workload, the Section 4.2 use case, and
   ``-m concurrency`` parallel runs.
"""

from __future__ import annotations

import pytest

from tests.conftest import PAPER_R_CODE, PAPER_SQL, make_sensor_relation

from repro.engine.database import Database
from repro.engine.executor import execution_mode
from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Relation, RowView, concat
from repro.engine.types import DataType
from repro.engine.vectorized import stats, vectorized_scans
from repro.fragment.topology import Topology
from repro.policy.presets import figure4_policy
from repro.processor.paradise import ParadiseProcessor
from repro.sensors.scenario import INTEGRATED_SCHEMA


# ---------------------------------------------------------------------------
# container contract
# ---------------------------------------------------------------------------


def test_columnar_and_dict_row_construction_identical():
    rows = [
        {"a": 1, "b": "x", "c": None},
        {"a": 2, "b": None, "c": 3.5},
        {"a": None, "b": "z", "c": -1.25},
    ]
    schema = Schema(
        [
            ColumnDef(name="a", data_type=DataType.INTEGER),
            ColumnDef(name="b", data_type=DataType.TEXT),
            ColumnDef(name="c", data_type=DataType.FLOAT),
        ]
    )
    from_rows = Relation(schema=schema, rows=rows, name="t")
    from_columns = Relation.from_columns(
        schema,
        [[1, 2, None], ["x", None, "z"], [None, 3.5, -1.25]],
        name="t",
    )
    assert from_rows.to_dicts() == from_columns.to_dicts() == rows
    assert from_rows.rows == from_columns.rows
    assert from_rows == from_columns
    assert from_rows.estimated_bytes() == from_columns.estimated_bytes()


def test_rowview_is_live_mapping():
    relation = Relation.from_rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
    row = relation.rows[0]
    assert isinstance(row, RowView)
    assert row["a"] == 1 and row.get("missing") is None
    assert list(row.keys()) == ["a", "b"]
    assert dict(row) == {"a": 1, "b": "x"}
    assert row == {"a": 1, "b": "x"}
    # Case-insensitive lookup, like the schema.
    assert row["A"] == 1
    # Write-through: mutating the view mutates the relation's columns.
    row["a"] = 99
    assert relation.column_values("a") == [99, 2]
    with pytest.raises(KeyError):
        row["new_column"] = 1
    with pytest.raises(TypeError):
        del row["a"]


def test_rowsview_sequence_protocol():
    relation = Relation.from_rows([{"a": i} for i in range(5)])
    rows = relation.rows
    assert len(rows) == 5 and bool(rows)
    assert rows[-1]["a"] == 4
    assert [row["a"] for row in rows[1:3]] == [1, 2]
    assert rows == [{"a": i} for i in range(5)]
    assert rows != [{"a": 0}]
    rows.append({"a": 5})
    rows.extend([{"a": 6}])
    assert relation.column_values("a") == [0, 1, 2, 3, 4, 5, 6]
    with pytest.raises(IndexError):
        rows[7]


def test_scope_rows_cache_invalidated_by_mutation():
    relation = Relation.from_rows([{"A": 1}, {"A": 2}])
    scopes = relation.scope_rows()
    assert scopes == [{"a": 1}, {"a": 2}]
    assert relation.scope_rows() is scopes  # cached while unchanged
    relation.rows[0]["a"] = 7
    assert relation.scope_rows() == [{"a": 7}, {"a": 2}]
    relation.rows.append({"A": 3})
    assert relation.scope_rows()[-1] == {"a": 3}


def test_slice_take_and_concat_roundtrip():
    relation = make_sensor_relation(rows=30)
    chunks = [relation.slice_rows(0, 11), relation.slice_rows(11, 20), relation.slice_rows(20, None)]
    assert sum(len(chunk) for chunk in chunks) == 30
    rebuilt = concat(chunks)
    assert rebuilt.to_dicts() == relation.to_dicts()
    picked = relation.take_rows([3, 1, 3])
    assert picked.to_dicts() == [relation.to_dicts()[i] for i in (3, 1, 3)]


def test_register_copies_columns_not_rows():
    """The cheap columnar copy still isolates both sides (no aliasing)."""
    database = Database()
    source = Relation.from_rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}], name="src")
    database.register("t", source)

    # Mutating the source after registration must not leak into the table...
    source.rows[0]["a"] = 111
    source.rows.append({"a": 3, "b": "z"})
    table = database.table("t")
    assert table.to_dicts() == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]

    # ...and mutating the registered table must not leak back.
    table.rows[1]["b"] = "mutated"
    database.insert_rows("t", [{"a": 4, "b": "w"}])
    assert source.to_dicts()[1]["b"] == "y"
    assert len(source) == 3


def test_register_rereg_same_shape_keeps_results_fresh():
    """Re-registering a same-shaped relation serves the new data."""
    database = Database()
    database.register("t", Relation.from_rows([{"a": 1}], name="t"))
    assert database.query("SELECT a FROM t").to_dicts() == [{"a": 1}]
    database.register("t", Relation.from_rows([{"a": 2}], name="t"))
    assert database.query("SELECT a FROM t").to_dicts() == [{"a": 2}]


# ---------------------------------------------------------------------------
# differential: engine modes × scan paths over the paper workloads
# ---------------------------------------------------------------------------


def _pipeline_processor(rows: int = 240) -> ParadiseProcessor:
    processor = ParadiseProcessor(
        figure4_policy(),
        schema=INTEGRATED_SCHEMA,
        topology=Topology.smart_home_tree(n_sensors=4, sensors_per_appliance=2),
    )
    processor.load_data(make_sensor_relation(rows=rows))
    return processor


def _materialize(result):
    relation = result.result
    return relation.schema.names, relation.to_dicts()


@pytest.mark.parametrize("use_r", [False, True], ids=["fig2_sql", "usecase_r"])
def test_pipeline_identical_across_modes_and_scan_paths(use_r):
    processor = _pipeline_processor()

    def run(mode: str, vectorize: bool):
        with execution_mode(mode), vectorized_scans(vectorize):
            if use_r:
                return processor.process_r(PAPER_R_CODE, "ActionFilter")
            return processor.process(PAPER_SQL, "ActionFilter")

    reference = _materialize(run("interpreted", False))
    for mode, vectorize in (("interpreted", True), ("compiled", False), ("compiled", True)):
        assert _materialize(run(mode, vectorize)) == reference, (mode, vectorize)


def test_vectorized_scans_engage_on_pipeline_fragments():
    processor = _pipeline_processor()
    stats.reset()
    processor.process(PAPER_SQL, "ActionFilter")
    assert stats.flat > 0  # the projection fragments scan columnar


def test_groupby_workload_identical_and_vectorized():
    processor = _pipeline_processor()
    sql = (
        "SELECT activity, COUNT(*) AS n, AVG(z) AS az, MIN(t) AS mn, MAX(t) AS mx "
        "FROM d WHERE valid = TRUE GROUP BY activity"
    )
    options = {"apply_rewriting": False, "anonymize": False}

    def run(mode: str, vectorize: bool):
        with execution_mode(mode), vectorized_scans(vectorize):
            return processor.process(sql, "ActionFilter", **options)

    stats.reset()
    reference = _materialize(run("interpreted", False))
    got = _materialize(run("compiled", True))
    assert got == reference
    assert stats.grouped + stats.partial > 0
    assert _materialize(run("compiled", False)) == reference


def test_scan_errors_match_row_path_identically():
    """Row-level evaluation errors keep row-major identity.

    The vectorized scan is conjunct-major/group-major; on any evaluation
    error it must abandon and let the row path raise its own error, so the
    compiled default surfaces exactly the error the pre-columnar engine
    surfaced.
    """
    from repro.engine.errors import ExecutionError

    database = Database()
    database.load_rows(
        "d", [{"v": 3, "s": [1]}, {"v": "bad", "s": 1}], schema=Schema.from_names(["v", "s"])
    )
    sql = "SELECT v FROM d WHERE v > 1 AND s > 5"

    def error_of(run):
        try:
            run()
        except Exception as exc:  # noqa: BLE001 - comparing error identity
            return type(exc), str(exc)
        return None

    def compiled():
        return database.query(sql)

    def row_path():
        with vectorized_scans(False):
            return database.query(sql)

    def oracle():
        with execution_mode("interpreted"):
            return database.query(sql)

    assert error_of(compiled) == error_of(row_path) == error_of(oracle)
    assert error_of(compiled) == (ExecutionError, "Cannot compare list and int")


def test_aggregate_scan_errors_match_row_path_identically():
    """Group-major accumulator feeding must not change the raised error."""
    import math

    database = Database()
    # NaN (group 2) precedes Inf (group 1) in row order, but group 1
    # first-occurs before the NaN row: the exact STDDEV moments raise
    # ValueError (NaN) row-major, while a purely group-major feed would hit
    # the Inf first and raise OverflowError instead — the scan must abandon
    # and let the row path raise.
    database.load_rows(
        "d",
        [
            {"k": 1, "v": 1.0},
            {"k": 2, "v": math.nan},
            {"k": 1, "v": math.inf},
        ],
    )
    sql = "SELECT k, STDDEV(v) AS s FROM d GROUP BY k"

    def error_of(run):
        try:
            run()
        except Exception as exc:  # noqa: BLE001 - comparing error identity
            return type(exc), str(exc)
        return None

    def compiled():
        return database.query(sql)

    def row_path():
        with vectorized_scans(False):
            return database.query(sql)

    assert error_of(compiled) == error_of(row_path)
    assert error_of(compiled) is not None


def test_zero_argument_aggregates_match_row_path():
    """``COUNT()``/``SUM()`` parse; the fast path must feed them star rows."""
    database = Database()
    database.load_rows("d", [{"k": 1, "v": 2.0}, {"k": 1, "v": 3.0}, {"k": 2, "v": 4.0}])
    for sql in (
        "SELECT COUNT() AS n FROM d",
        "SELECT SUM() AS s FROM d",
        "SELECT k, COUNT() AS n, MIN() AS m FROM d GROUP BY k",
    ):
        fast = database.query(sql).to_dicts()
        with vectorized_scans(False):
            slow = database.query(sql).to_dicts()
        assert fast == slow, sql


def test_estimated_bytes_tolerates_exotic_tuples():
    """Tuple cells outside the wire vocabulary fall back to text sizing."""
    relation = Relation.from_rows([{"a": (1, [2, 3])}])
    assert relation.estimated_bytes() == len(str((1, [2, 3])))


@pytest.mark.concurrency
def test_parallel_runs_identical_across_scan_paths():
    processor = _pipeline_processor()
    sql = "SELECT activity, COUNT(*) AS n, AVG(z) AS az FROM d GROUP BY activity"
    options = {"apply_rewriting": False, "anonymize": False}
    with vectorized_scans(False):
        serial = processor.process(sql, "ActionFilter", execution="serial", **options)
    for vectorize in (False, True):
        with vectorized_scans(vectorize):
            parallel = processor.process(sql, "ActionFilter", execution="parallel", **options)
        assert parallel.result.schema.names == serial.result.schema.names
        assert parallel.result.rows == serial.result.rows, vectorize


@pytest.mark.concurrency
def test_concurrent_sessions_identical_with_columnar_storage():
    from repro.runtime import QueryRequest, SessionFrontEnd

    processor = _pipeline_processor()
    options = {"apply_rewriting": False, "anonymize": False}
    queries = [
        "SELECT activity, COUNT(*) AS n, AVG(z) AS az FROM d GROUP BY activity",
        "SELECT x, y, z, t FROM d WHERE z < 1.5",
    ]
    requests = [
        QueryRequest(query=sql, module_id="ActionFilter", options=options)
        for sql in queries
    ] * 2
    expected = [
        processor.process(r.query, r.module_id, execution="parallel", **options)
        for r in requests
    ]
    with SessionFrontEnd(processor, max_concurrent=3) as front_end:
        got = front_end.run_batch(requests)
    for want, have in zip(expected, got):
        assert have.result.rows == want.result.rows
