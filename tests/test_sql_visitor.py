"""Tests for AST walkers and transformers."""

from repro.sql import ast
from repro.sql.parser import parse, parse_expression
from repro.sql.render import render, render_expression
from repro.sql.visitor import (
    clone,
    collect_aggregates,
    collect_column_names,
    collect_columns,
    collect_function_calls,
    collect_subqueries,
    collect_tables,
    nesting_depth,
    rename_tables,
    replace_columns,
    transform,
    walk,
)


def test_walk_yields_all_nodes():
    query = parse("SELECT x FROM d WHERE x > 1")
    kinds = {type(node).__name__ for node in walk(query)}
    assert {"SelectQuery", "SelectItem", "Column", "TableRef", "BinaryOp", "Literal"} <= kinds


def test_collect_columns_and_names():
    query = parse("SELECT x, y FROM d WHERE z < 2 GROUP BY x HAVING SUM(z) > 1 ORDER BY t")
    names = set(collect_column_names(query))
    assert names == {"x", "y", "z", "t"}
    assert all(isinstance(c, ast.Column) for c in collect_columns(query))


def test_collect_tables_nested():
    query = parse("SELECT a FROM (SELECT a FROM inner_table) WHERE a IN (SELECT a FROM other)")
    names = {t.name for t in collect_tables(query)}
    assert names == {"inner_table", "other"}


def test_collect_function_calls_and_aggregates():
    query = parse("SELECT AVG(z), UPPER(c), SUM(x) FROM d")
    calls = {c.name for c in collect_function_calls(query)}
    assert calls == {"AVG", "UPPER", "SUM"}
    aggregates = {c.name for c in collect_aggregates(query)}
    assert aggregates == {"AVG", "SUM"}


def test_collect_subqueries_excludes_root(paper_sql):
    query = parse(paper_sql)
    subqueries = collect_subqueries(query)
    assert len(subqueries) == 1


def test_nesting_depth():
    assert nesting_depth(parse("SELECT x FROM d")) == 1
    assert nesting_depth(parse("SELECT x FROM (SELECT x FROM d)")) == 2
    assert nesting_depth(parse("SELECT x FROM (SELECT x FROM (SELECT x FROM d))")) == 3


def test_nesting_depth_set_operation():
    query = parse("SELECT x FROM (SELECT x FROM d) UNION SELECT x FROM e")
    assert nesting_depth(query) == 2


def test_clone_is_deep():
    query = parse("SELECT x FROM d")
    copy = clone(query)
    copy.items[0].expression.name = "changed"
    assert query.items[0].expression.name == "x"


def test_transform_replaces_nodes_without_mutating_input():
    expression = parse_expression("x + y")

    def visitor(node):
        if isinstance(node, ast.Column) and node.name == "x":
            return ast.Literal(1)
        return None

    replaced = transform(expression, visitor)
    assert render_expression(replaced) == "1 + y"
    assert render_expression(expression) == "x + y"


def test_replace_columns():
    expression = parse_expression("z > 1 AND t < z")
    replaced = replace_columns(expression, {"z": ast.Column(name="zAVG")})
    assert render_expression(replaced) == "zAVG > 1 AND t < zAVG"


def test_rename_tables():
    query = parse("SELECT x FROM ubisense WHERE x > 1")
    renamed = rename_tables(query, {"ubisense": "sensfloor"})
    assert "FROM sensfloor" in render(renamed)
    # Original untouched.
    assert "FROM ubisense" in render(query)
