"""Tests for the R call parser and SQLable-pattern extraction."""

import pytest

from repro.rlang import (
    RParseError,
    SqlablePatternError,
    extract_sql_from_r,
    find_sqldf_calls,
    parse_r_call,
)
from repro.sql import ast


def test_parse_simple_r_call():
    call = parse_r_call("plot(x, y, col='red')")
    assert call.function == "plot"
    assert len(call.arguments) == 3
    assert call.arguments[2].name == "col"
    assert call.arguments[2].text == "'red'"
    assert call.positional[0].text == "x"


def test_parse_nested_call():
    call = parse_r_call("filterByClass(sqldf('SELECT 1'), action='walk', do.plot=F)")
    assert call.function == "filterByClass"
    inner = call.arguments[0].call
    assert inner is not None
    assert inner.function == "sqldf"
    assert call.argument("action").text == "'walk'"
    assert call.argument("do.plot").text == "F"
    assert call.argument("missing") is None


def test_find_calls_and_render_roundtrip():
    call = parse_r_call("outer(inner(sqldf('SELECT 1')), k=2)")
    assert len(call.find_calls("sqldf")) == 1
    rendered = call.render()
    assert parse_r_call(rendered).function == "outer"


def test_parse_errors():
    with pytest.raises(RParseError):
        parse_r_call("not a call")
    with pytest.raises(RParseError):
        parse_r_call("f(unbalanced")
    with pytest.raises(RParseError):
        parse_r_call("f(x) trailing")


def test_find_sqldf_calls_with_quoted_and_raw_sql():
    quoted = "result <- sqldf('SELECT x FROM d')"
    calls = find_sqldf_calls(quoted)
    assert len(calls) == 1
    assert "SELECT x FROM d" in calls[0][2]
    raw = "sqldf(SELECT x FROM (SELECT x FROM d))"
    assert len(find_sqldf_calls(raw)) == 1


def test_extract_sql_from_paper_r_code(paper_r_code):
    extraction = extract_sql_from_r(paper_r_code)
    assert extraction.wrapper_function == "filterByClass"
    assert "REGR_INTERCEPT" in extraction.sql.upper()
    assert isinstance(extraction.query, ast.SelectQuery)
    assert extraction.query.from_clause is not None
    residual = extraction.residual_call("d_prime")
    assert residual.startswith("filterByClass(d_prime")
    assert "action='walk'" in residual
    assert "do.plot=F" in residual
    assert "sqldf" not in residual
    assert extraction.wrapper_arguments == ["action='walk'", "do.plot=F"]


def test_extract_sql_with_quoted_query():
    code = "summary(sqldf(\"SELECT x, y FROM d WHERE z < 2\"), digits=2)"
    extraction = extract_sql_from_r(code)
    assert extraction.sql == "SELECT x, y FROM d WHERE z < 2"
    assert extraction.wrapper_function == "summary"
    assert extraction.residual_call("res") == "summary(res, digits=2)"


def test_extract_sql_without_wrapper():
    code = "frame <- sqldf('SELECT COUNT(*) FROM d')"
    extraction = extract_sql_from_r(code)
    assert extraction.wrapper_function is None
    assert extraction.residual_call("d1") == "frame <- d1"


def test_extract_requires_sqldf_and_valid_sql():
    with pytest.raises(SqlablePatternError):
        extract_sql_from_r("plot(x, y)")
    with pytest.raises(SqlablePatternError):
        extract_sql_from_r("sqldf('this is not sql at all !!!')")
    with pytest.raises(SqlablePatternError):
        extract_sql_from_r("sqldf(SELECT x FROM d")  # unbalanced
