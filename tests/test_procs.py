"""Tests for the process-pool execution backend (``workers="processes"``).

The contract under test: engine operations dispatched to spawned worker
processes return relations **byte-identical** to the serial oracle on every
workload shape, under both engine modes and under injected failures — while
nothing ever crosses the process boundary except wire bytes (no pickling of
relations or aggregate state, enforced by ``Relation.__reduce__``).
"""

from __future__ import annotations

import pickle

import pytest

from tests.test_runtime import RAW_WORKLOADS, build_tree_processor

from repro.engine.database import Database
from repro.engine.table import Relation
from repro.engine.wire import WireFormatError, pack_relation, unpack_relation
from repro.processor.paradise import ParadiseProcessor
from repro.policy.presets import figure4_policy
from repro.runtime.faults import KILL_NODE, TASK_ERROR, Fault, FailureInjector
from repro.runtime.procs import (
    ProcessDispatcher,
    decode_job,
    encode_job,
    execute_job,
    referenced_tables,
)
from repro.sql.parser import parse

pytestmark = pytest.mark.procs

ROWS = 120

PAPER_SQL = (
    "SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) "
    "FROM (SELECT x, y, z, t FROM d)"
)


def procs_processor(**kwargs) -> ParadiseProcessor:
    kwargs.setdefault("workers", "processes")
    kwargs.setdefault("process_workers", 2)
    return build_tree_processor(n_sensors=4, rows=ROWS, **kwargs)


def assert_same_relation(expected, actual):
    assert expected is not None and actual is not None
    assert expected.schema.names == actual.schema.names
    assert expected.rows == actual.rows


# ---------------------------------------------------------------------------
# job framing
# ---------------------------------------------------------------------------


def test_job_codec_round_trip():
    tables = [("d", b"\x01\x02"), ("lookup", b"")]
    payload = encode_job("partial", "interpreted", "SELECT 1", tables, b"state")
    assert decode_job(payload) == (
        "partial",
        "interpreted",
        "SELECT 1",
        tables,
        b"state",
    )


def test_job_codec_without_state():
    payload = encode_job("query", "compiled", "SELECT x FROM d", [("d", b"abc")])
    op, mode, sql, tables, state = decode_job(payload)
    assert (op, mode, sql) == ("query", "compiled", "SELECT x FROM d")
    assert tables == [("d", b"abc")]
    assert state is None


def test_job_codec_rejects_unknown_inputs():
    with pytest.raises(ValueError):
        encode_job("explain", "compiled", "SELECT 1", [])
    with pytest.raises(ValueError):
        encode_job("query", "jit", "SELECT 1", [])


def test_job_codec_fails_loudly_on_malformed_payloads():
    payload = encode_job("query", "compiled", "SELECT 1", [("d", b"abc")])
    with pytest.raises(WireFormatError):
        decode_job(b"NOPE" + payload[4:])
    with pytest.raises(WireFormatError):
        decode_job(payload[:-1])
    with pytest.raises(WireFormatError):
        decode_job(payload + b"\x00")
    bad_op = bytearray(payload)
    bad_op[4] = 0xFF
    with pytest.raises(WireFormatError):
        decode_job(bytes(bad_op))


def test_referenced_tables_walks_subqueries():
    query = parse(
        "SELECT x FROM d WHERE z < (SELECT AVG(z) FROM calib) "
        "AND y IN (SELECT y FROM zones)"
    )
    names = [name.lower() for name in referenced_tables(query)]
    assert names[0] == "d"
    assert sorted(names) == ["calib", "d", "zones"]


# ---------------------------------------------------------------------------
# the worker function (in-process: correctness without spawning)
# ---------------------------------------------------------------------------


def make_relation():
    return Relation.from_rows(
        [
            {"device": i % 3, "value": float(i), "label": f"r{i}"}
            for i in range(30)
        ],
        name="d",
    )


def test_execute_job_query():
    relation = make_relation()
    payload = encode_job(
        "query",
        "compiled",
        "SELECT device, value FROM d WHERE value < 10.0",
        [("d", pack_relation(relation))],
    )
    output = unpack_relation(execute_job(payload))
    database = Database()
    database.register("d", relation)
    expected = database.query("SELECT device, value FROM d WHERE value < 10.0")
    assert_same_relation(expected, output)


def test_execute_job_partial_combine_finalize_chain():
    relation = make_relation()
    sql = "SELECT device, AVG(value) AS mean, COUNT(*) AS n FROM d GROUP BY device"
    database = Database()
    database.register("d", relation)
    expected = database.query(sql)

    partial_payload = encode_job(
        "partial", "compiled", sql, [("d", pack_relation(relation))]
    )
    states = unpack_relation(execute_job(partial_payload))
    assert all(name.startswith("__agg") for name in states.schema.names[1:])

    combined = unpack_relation(
        execute_job(encode_job("combine", "compiled", sql, [], pack_relation(states)))
    )
    final = unpack_relation(
        execute_job(
            encode_job("finalize", "compiled", sql, [], pack_relation(combined))
        )
    )
    assert_same_relation(expected, final)


# ---------------------------------------------------------------------------
# no pickling of relations or aggregate state
# ---------------------------------------------------------------------------


def test_relations_are_pickle_poisoned():
    relation = make_relation()
    with pytest.raises(TypeError, match="not picklable"):
        pickle.dumps(relation)
    database = Database()
    database.register("d", relation)
    states = database.partial_aggregate(
        "SELECT device, AVG(value) AS mean FROM d GROUP BY device"
    )
    with pytest.raises(TypeError, match="not picklable"):
        pickle.dumps(states)


def test_dispatcher_ships_bytes_not_objects():
    """A full dispatched run succeeds despite the pickle poison: only the
    framed byte payload ever crosses the pool boundary."""
    dispatcher = ProcessDispatcher(workers=1)
    relation = make_relation()
    query = parse("SELECT device, SUM(value) AS total FROM d GROUP BY device")
    output = dispatcher.run("query", "compiled", query, [("d", relation)])
    database = Database()
    database.register("d", relation)
    assert_same_relation(database.query(query), output)
    assert dispatcher.jobs == 1
    assert dispatcher.bytes_out > 0


def test_dispatcher_validates_worker_count():
    with pytest.raises(ValueError):
        ProcessDispatcher(workers=0)
    with pytest.raises(ValueError):
        ParadiseProcessor(figure4_policy(), workers="fibers")
    with pytest.raises(ValueError):
        ParadiseProcessor(figure4_policy(), workers="processes", process_workers=0)


# ---------------------------------------------------------------------------
# serial-oracle differential through spawned workers
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("query", RAW_WORKLOADS)
def test_process_backend_matches_serial_oracle(query):
    serial = build_tree_processor(n_sensors=4, rows=ROWS)
    procs = procs_processor()
    oracle = serial.process(
        query, "fig4", execution="serial", apply_rewriting=False
    )
    result = procs.process(
        query, "fig4", execution="parallel", apply_rewriting=False
    )
    assert_same_relation(oracle.result, result.result)
    assert procs._dispatcher is not None and procs._dispatcher.jobs > 0


def test_process_backend_matches_oracle_on_rewritten_paper_query():
    serial = build_tree_processor(n_sensors=4, rows=ROWS)
    procs = procs_processor()
    oracle = serial.process(PAPER_SQL, "ActionFilter", execution="serial")
    result = procs.process(PAPER_SQL, "ActionFilter", execution="parallel")
    assert_same_relation(oracle.result, result.result)


def test_process_backend_matches_oracle_in_interpreted_mode():
    query = "SELECT x, AVG(z) AS za, COUNT(*) AS n FROM d GROUP BY x"
    serial = build_tree_processor(n_sensors=4, rows=ROWS, engine_mode="interpreted")
    procs = procs_processor(engine_mode="interpreted")
    oracle = serial.process(
        query, "fig4", execution="serial", apply_rewriting=False
    )
    result = procs.process(
        query, "fig4", execution="parallel", apply_rewriting=False
    )
    assert_same_relation(oracle.result, result.result)


def test_process_backend_profile_spans_hold():
    procs = procs_processor()
    result = procs.process(
        RAW_WORKLOADS[2],
        "fig4",
        execution="parallel",
        apply_rewriting=False,
        profile=True,
    )
    assert result.profile is not None
    rendered = result.profile.render()
    assert "partial" in rendered or "fragment" in rendered
    assert result.trace is not None
    assert any(span.kind == "task" for span in result.trace.snapshot())


# ---------------------------------------------------------------------------
# fault tolerance through spawned workers
# ---------------------------------------------------------------------------


def test_process_backend_survives_node_kill():
    query = RAW_WORKLOADS[2]
    oracle = build_tree_processor(n_sensors=4, rows=ROWS).process(
        query, "fig4", execution="serial", apply_rewriting=False
    )
    injector = FailureInjector([Fault(kind=KILL_NODE, node="sensor_1")])
    procs = procs_processor()
    result = procs.process(
        query,
        "fig4",
        execution="parallel",
        apply_rewriting=False,
        faults=injector,
    )
    assert injector.fired
    assert_same_relation(oracle.result, result.result)


def test_process_backend_retries_transient_errors():
    query = RAW_WORKLOADS[0]
    oracle = build_tree_processor(n_sensors=4, rows=ROWS).process(
        query, "fig4", execution="serial", apply_rewriting=False
    )
    injector = FailureInjector([Fault(kind=TASK_ERROR, node="sensor_2")])
    procs = procs_processor()
    result = procs.process(
        query,
        "fig4",
        execution="parallel",
        apply_rewriting=False,
        faults=injector,
    )
    assert injector.fired
    assert result.runtime is not None and result.runtime.retried_attempts >= 1
    assert_same_relation(oracle.result, result.result)
