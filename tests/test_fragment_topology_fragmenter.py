"""Tests for the topology model and the vertical fragmenter."""

import pytest

from repro.fragment import CapabilityLevel, Topology, VerticalFragmenter
from repro.fragment.topology import Node
from repro.policy.presets import figure4_policy
from repro.rewrite import QueryRewriter
from repro.sql import parse, render
from repro.sql.analysis import analyze_query


# ---------------------------------------------------------------------------
# topology
# ---------------------------------------------------------------------------


def test_default_chain_shape():
    topology = Topology.default_chain()
    assert [node.level for node in topology.nodes] == [
        CapabilityLevel.E4_SENSOR,
        CapabilityLevel.E3_APPLIANCE,
        CapabilityLevel.E2_PC,
        CapabilityLevel.E1_CLOUD,
    ]
    assert topology.cloud.name == "cloud"
    assert not topology.cloud.inside_apartment
    assert topology.boundary_index == len(topology) - 1


def test_topology_lookup_and_describe():
    topology = Topology.default_chain(appliance_count=2)
    assert len(topology.nodes_at(CapabilityLevel.E3_APPLIANCE)) == 2
    assert topology.node("pc").level is CapabilityLevel.E2_PC
    with pytest.raises(KeyError):
        topology.node("nope")
    description = topology.describe()
    assert description[0]["level"] == "E4"
    assert description[-1]["inside_apartment"] == "False"


def test_first_node_at_or_above_skips_missing_levels():
    topology = Topology.cloud_only()
    node = topology.first_node_at_or_above(CapabilityLevel.E3_APPLIANCE)
    assert node.level is CapabilityLevel.E1_CLOUD


def test_topology_rejects_empty_and_duplicate_names():
    with pytest.raises(ValueError):
        Topology([])
    with pytest.raises(ValueError):
        Topology(
            [
                Node(name="a", level=CapabilityLevel.E4_SENSOR),
                Node(name="a", level=CapabilityLevel.E1_CLOUD),
            ]
        )


def test_node_capacity_check():
    node = Node(name="sensor", level=CapabilityLevel.E4_SENSOR, free_memory_mb=1.0)
    assert node.can_hold_rows(100)
    assert not node.can_hold_rows(10_000_000)
    assert node.cpu_power == pytest.approx(0.1)


# ---------------------------------------------------------------------------
# fragmenter
# ---------------------------------------------------------------------------


@pytest.fixture
def paper_plan(paper_sql):
    rewritten = QueryRewriter(figure4_policy()).rewrite_sql(paper_sql, "ActionFilter")
    return VerticalFragmenter(Topology.default_chain()).fragment(rewritten.query)


def test_paper_plan_reproduces_the_four_staged_queries(paper_plan):
    """The plan must match the four per-level queries printed in Section 4.2."""
    sqls = [fragment.sql for fragment in paper_plan.fragments]
    assert sqls[0] == "SELECT * FROM d WHERE z < 2"
    assert sqls[1] == "SELECT x, y, z, t FROM d1 WHERE x > y"
    assert sqls[2] == "SELECT x, y, AVG(z) AS zAVG, t FROM d2 GROUP BY x, y HAVING SUM(z) > 100"
    assert "REGR_INTERCEPT(y, x) OVER (PARTITION BY zAVG ORDER BY t)" in sqls[3]
    assert sqls[3].endswith("FROM d3")


def test_paper_plan_levels_and_nodes(paper_plan):
    levels = [fragment.level for fragment in paper_plan.fragments]
    assert levels == [
        CapabilityLevel.E4_SENSOR,
        CapabilityLevel.E3_APPLIANCE,
        CapabilityLevel.E3_APPLIANCE,
        CapabilityLevel.E2_PC,
    ]
    assert paper_plan.fragments[0].assigned_node == "sensor"
    assert paper_plan.fragments[-1].assigned_node == "pc"
    assert paper_plan.deepest_pushdown is CapabilityLevel.E4_SENSOR
    assert paper_plan.result_name == paper_plan.fragments[-1].name


def test_fragments_chain_via_intermediate_names(paper_plan):
    names = [fragment.name for fragment in paper_plan.fragments]
    assert names == ["d1", "d2", "d3", "d4"]
    inputs = [fragment.input_name for fragment in paper_plan.fragments]
    assert inputs == ["d", "d1", "d2", "d3"]


def test_each_fragment_is_executable_by_its_level(paper_plan):
    from repro.fragment.capabilities import capability_for

    for fragment in paper_plan.fragments:
        capability = capability_for(fragment.level)
        assert capability.supports(analyze_query(fragment.query)), fragment.sql


def test_plan_description_and_pretty(paper_plan):
    rows = paper_plan.describe()
    assert rows[-1]["fragment"] == "Q_delta"
    assert rows[0]["level"] == "E4"
    text = paper_plan.pretty()
    assert "d1" in text and "Q_delta" in text
    assert paper_plan.fragments_at(CapabilityLevel.E3_APPLIANCE)


def test_flat_query_still_fragments():
    plan = VerticalFragmenter().fragment(
        parse("SELECT x, y FROM d WHERE z < 2 AND x > y")
    )
    assert len(plan.fragments) == 2
    assert plan.fragments[0].level is CapabilityLevel.E4_SENSOR
    assert "z < 2" in plan.fragments[0].sql
    assert "x > y" in plan.fragments[1].sql


def test_constant_only_query_yields_single_sensor_fragment():
    plan = VerticalFragmenter().fragment(parse("SELECT * FROM stream WHERE z < 2"))
    assert len(plan.fragments) == 1
    assert plan.fragments[0].level is CapabilityLevel.E4_SENSOR


def test_aggregate_query_places_grouping_on_appliance():
    plan = VerticalFragmenter().fragment(
        parse("SELECT x, AVG(z) AS m FROM d GROUP BY x HAVING COUNT(*) > 5")
    )
    levels = [fragment.level for fragment in plan.fragments]
    assert levels[-1] is CapabilityLevel.E3_APPLIANCE


def test_join_query_is_one_appliance_fragment():
    plan = VerticalFragmenter().fragment(
        parse("SELECT a.x FROM ubisense a JOIN sensfloor b ON a.t = b.t WHERE a.x > 1")
    )
    assert len(plan.fragments) == 1
    assert plan.fragments[0].level is CapabilityLevel.E3_APPLIANCE


def test_order_by_limit_needs_appliance():
    plan = VerticalFragmenter().fragment(parse("SELECT * FROM d WHERE z < 2 ORDER BY t LIMIT 5"))
    assert plan.fragments[0].level is CapabilityLevel.E4_SENSOR
    assert plan.fragments[-1].level is CapabilityLevel.E3_APPLIANCE
    assert plan.fragments[-1].query.limit == 5


def test_missing_levels_fall_back_to_more_powerful_nodes(paper_sql):
    rewritten = QueryRewriter(figure4_policy()).rewrite_sql(paper_sql, "ActionFilter")
    plan = VerticalFragmenter(Topology.cloud_only()).fragment(rewritten.query)
    # Appliance/PC fragments must run somewhere that exists in the topology.
    for fragment in plan.fragments:
        assert fragment.assigned_node in {"sensor", "cloud"}


def test_cloud_only_plan_ships_raw_data(paper_sql):
    fragmenter = VerticalFragmenter()
    plan = fragmenter.cloud_only_plan(parse(paper_sql))
    assert len(plan.fragments) == 1
    assert plan.fragments[0].sql == "SELECT * FROM d"
    assert plan.remainder_query is not None
    assert render(plan.remainder_query) == render(parse(paper_sql))


def test_three_level_nesting_produces_monotonic_levels():
    sql = (
        "SELECT SUM(v) OVER (ORDER BY t) FROM ("
        "  SELECT t, AVG(z) AS v FROM (SELECT t, z FROM d WHERE z < 2) GROUP BY t"
        ")"
    )
    plan = VerticalFragmenter().fragment(parse(sql))
    numeric_levels = [int(fragment.level) for fragment in plan.fragments]
    assert numeric_levels == sorted(numeric_levels, reverse=True)
