"""Tests for the admission analysis of the preprocessor."""

import pytest

from repro.policy import PolicyBuilder
from repro.rewrite.analyzer import NodeCapacity, PolicyAnalyzer
from repro.sql.parser import parse


def test_attribute_analysis_against_figure4(paper_policy, paper_sql):
    analyzer = PolicyAnalyzer(paper_policy)
    analysis = analyzer.analyze(parse(paper_sql), "ActionFilter")
    assert set(analysis.requested_attributes) == {"x", "y", "z", "t"}
    assert set(analysis.allowed_attributes) == {"x", "y", "t"}
    assert analysis.aggregated_attributes == ["z"]
    assert analysis.denied_attributes == []
    assert analysis.coverage == 1.0
    assert not analysis.fully_denied


def test_denied_attributes_lower_coverage(paper_policy):
    analyzer = PolicyAnalyzer(paper_policy)
    analysis = analyzer.analyze(parse("SELECT person_id, z FROM d"), "ActionFilter")
    assert analysis.unknown_attributes == ["person_id"]
    assert analysis.coverage == pytest.approx(0.5)


def test_admit_accepts_the_paper_query(paper_policy, paper_sql):
    analyzer = PolicyAnalyzer(paper_policy)
    decision = analyzer.admit(parse(paper_sql), "ActionFilter")
    assert decision.admitted
    assert decision.estimated_information_gain > 0.5
    assert "admitted" in decision.explain()


def test_admit_refuses_unknown_module(paper_policy, paper_sql):
    analyzer = PolicyAnalyzer(paper_policy)
    decision = analyzer.admit(parse(paper_sql), "UnknownModule")
    assert not decision.admitted
    assert "no policy" in decision.reasons[0]


def test_admit_refuses_fully_denied_query():
    policy = PolicyBuilder().module("M").deny("secret").build()
    analyzer = PolicyAnalyzer(policy)
    decision = analyzer.admit(parse("SELECT secret FROM d"), "M")
    assert not decision.admitted
    assert any("denies every requested attribute" in reason for reason in decision.reasons)


def test_admit_refuses_low_information_gain():
    policy = PolicyBuilder().module("M").allow("x").deny("a").deny("b").deny("c").build()
    analyzer = PolicyAnalyzer(policy, minimum_information_gain=0.5)
    decision = analyzer.admit(parse("SELECT x, a, b, c FROM d"), "M")
    assert not decision.admitted
    assert any("information gain" in reason for reason in decision.reasons)


def test_admit_checks_node_capacity(paper_policy, paper_sql):
    analyzer = PolicyAnalyzer(paper_policy)
    tiny = NodeCapacity(free_memory_mb=0.001)
    decision = analyzer.admit(
        parse(paper_sql), "ActionFilter", estimated_rows=10_000_000, capacity=tiny
    )
    assert not decision.admitted
    assert any("capacity" in reason for reason in decision.reasons)


def test_node_capacity_can_process():
    assert NodeCapacity(free_memory_mb=1.0).can_process(1000)
    assert not NodeCapacity(free_memory_mb=0.0001).can_process(1_000_000)


def test_query_interval_enforcement(paper_policy, paper_sql):
    clock_value = [0.0]

    def clock():
        return clock_value[0]

    policy = (
        PolicyBuilder()
        .module("ActionFilter")
        .allow("x")
        .allow("y")
        .allow("z")
        .allow("t")
        .query_interval(60)
        .build()
    )
    analyzer = PolicyAnalyzer(policy, clock=clock)
    first = analyzer.admit(parse(paper_sql), "ActionFilter", enforce_interval=True)
    assert first.admitted
    # Second query 10 seconds later violates the 60 second interval.
    clock_value[0] = 10.0
    second = analyzer.admit(parse(paper_sql), "ActionFilter", enforce_interval=True)
    assert not second.admitted
    # After the interval has elapsed the query is admitted again.
    clock_value[0] = 120.0
    third = analyzer.admit(parse(paper_sql), "ActionFilter", enforce_interval=True)
    assert third.admitted
    # reset_interval clears the bookkeeping.
    analyzer.reset_interval("ActionFilter")
    clock_value[0] = 121.0
    assert analyzer.admit(parse(paper_sql), "ActionFilter", enforce_interval=True).admitted


def test_default_allow_module_treats_unknown_attributes_as_allowed():
    policy = PolicyBuilder().module("M", default_allow=True).build()
    analyzer = PolicyAnalyzer(policy)
    analysis = analyzer.analyze(parse("SELECT anything FROM d"), "M")
    assert analysis.allowed_attributes == ["anything"]
    assert analysis.coverage == 1.0
