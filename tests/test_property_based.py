"""Property-based tests (hypothesis) for the core invariants.

The strategies build random expressions/queries/relations and check the
invariants the rest of the system relies on:

* parse(render(q)) is a fixed point of the SQL frontend,
* conjunction/conjunction_terms are inverses,
* the executor's WHERE is equivalent to Python-side filtering,
* DD and KL metrics respect their mathematical bounds,
* the k-anonymizer always produces k-anonymous output,
* the rewriter never leaks denied attributes and is idempotent.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.anonymize.kanonymity import KAnonymizer, is_k_anonymous
from repro.engine.database import Database
from repro.engine.table import Relation
from repro.metrics.distance import direct_distance
from repro.metrics.divergence import kl_divergence, value_distribution
from repro.policy import PolicyBuilder
from repro.rewrite import QueryRewriter
from repro.sql import ast, parse, render
from repro.sql.render import render_expression
from repro.sql.visitor import collect_column_names

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

column_names = st.sampled_from(["x", "y", "z", "t", "v", "person_id"])
table_names = st.sampled_from(["d", "stream", "ubisense", "sensfloor"])
comparison_operators = st.sampled_from(["=", "<", "<=", ">", ">=", "<>"])
numbers = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False).map(
        lambda value: round(value, 3)
    ),
)


@st.composite
def simple_comparisons(draw):
    left = ast.Column(name=draw(column_names))
    if draw(st.booleans()):
        right: ast.Expression = ast.Column(name=draw(column_names))
    else:
        right = ast.Literal(draw(numbers))
    return ast.BinaryOp(draw(comparison_operators), left, right)


@st.composite
def boolean_expressions(draw, max_depth=3):
    if max_depth <= 0 or draw(st.integers(min_value=0, max_value=2)) == 0:
        return draw(simple_comparisons())
    operator = draw(st.sampled_from(["AND", "OR"]))
    left = draw(boolean_expressions(max_depth=max_depth - 1))
    right = draw(boolean_expressions(max_depth=max_depth - 1))
    return ast.BinaryOp(operator, left, right)


@st.composite
def select_queries(draw):
    item_columns = draw(st.lists(column_names, min_size=1, max_size=4, unique=True))
    items = [ast.SelectItem(expression=ast.Column(name=name)) for name in item_columns]
    where = draw(st.none() | boolean_expressions())
    order = draw(st.none() | column_names)
    query = ast.SelectQuery(
        items=items,
        from_clause=ast.TableRef(name=draw(table_names)),
        where=where,
        order_by=[ast.OrderItem(expression=ast.Column(name=order))] if order else [],
        limit=draw(st.none() | st.integers(min_value=0, max_value=50)),
        distinct=draw(st.booleans()),
    )
    return query


@st.composite
def sensor_rows(draw):
    count = draw(st.integers(min_value=1, max_value=40))
    rows = []
    for index in range(count):
        rows.append(
            {
                "x": draw(st.integers(min_value=0, max_value=5)) * 1.0,
                "y": draw(st.integers(min_value=0, max_value=5)) * 1.0,
                "z": round(draw(st.floats(min_value=0, max_value=2, allow_nan=False)), 2),
                "t": float(index),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# SQL frontend invariants
# ---------------------------------------------------------------------------


@given(select_queries())
@settings(max_examples=60, deadline=None)
def test_render_parse_fixed_point(query):
    text = render(query)
    reparsed = parse(text)
    assert render(reparsed) == text


@given(boolean_expressions())
@settings(max_examples=60, deadline=None)
def test_expression_render_parse_fixed_point(expression):
    from repro.sql.parser import parse_expression

    text = render_expression(expression)
    assert render_expression(parse_expression(text)) == text


@given(st.lists(simple_comparisons(), min_size=0, max_size=6))
@settings(max_examples=60, deadline=None)
def test_conjunction_roundtrip(terms):
    combined = ast.conjunction(*terms)
    split = ast.conjunction_terms(combined)
    assert [render_expression(t) for t in split] == [render_expression(t) for t in terms]
    if not terms:
        assert combined is None


# ---------------------------------------------------------------------------
# executor invariants
# ---------------------------------------------------------------------------


@given(sensor_rows(), st.floats(min_value=0, max_value=2, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_where_matches_python_filter(rows, threshold):
    database = Database()
    database.load_rows("d", rows)
    threshold = round(threshold, 2)
    result = database.query(f"SELECT t FROM d WHERE z < {threshold}")
    expected = [row["t"] for row in rows if row["z"] < threshold]
    assert sorted(result.column_values("t")) == sorted(expected)


@given(sensor_rows())
@settings(max_examples=40, deadline=None)
def test_group_by_partitions_rows(rows):
    database = Database()
    database.load_rows("d", rows)
    result = database.query("SELECT x, COUNT(*) AS n FROM d GROUP BY x")
    assert sum(row["n"] for row in result.rows) == len(rows)
    assert len(result) == len({row["x"] for row in rows})


# ---------------------------------------------------------------------------
# metric invariants
# ---------------------------------------------------------------------------


@given(sensor_rows(), st.integers(min_value=0, max_value=3))
@settings(max_examples=40, deadline=None)
def test_direct_distance_bounds(rows, perturb_every):
    original = Relation.from_rows(rows)
    modified_rows = []
    for index, row in enumerate(rows):
        new_row = dict(row)
        if perturb_every and index % (perturb_every + 1) == 0:
            new_row["z"] = (new_row["z"] or 0) + 10
        modified_rows.append(new_row)
    modified = Relation.from_rows(modified_rows)
    result = direct_distance(original, modified, columns=original.schema.names)
    assert 0 <= result.changed_cells <= result.total_cells
    assert 0.0 <= result.ratio <= 1.0
    assert result.quality == 1.0 - result.ratio
    assert direct_distance(original, original).changed_cells == 0


@given(
    st.lists(st.floats(min_value=0, max_value=10, allow_nan=False), min_size=1, max_size=50),
    st.lists(st.floats(min_value=0, max_value=10, allow_nan=False), min_size=1, max_size=50),
)
@settings(max_examples=40, deadline=None)
def test_kl_divergence_non_negative_and_zero_on_self(first, second):
    p = value_distribution(first, value_range=(0, 10))
    q = value_distribution(second, value_range=(0, 10))
    assert kl_divergence(p, p) <= 1e-9
    divergence = kl_divergence(p, q)
    assert divergence >= 0
    assert not math.isnan(divergence)


# ---------------------------------------------------------------------------
# anonymization invariants
# ---------------------------------------------------------------------------


@given(sensor_rows(), st.integers(min_value=2, max_value=6))
@settings(max_examples=30, deadline=None)
def test_k_anonymizer_always_satisfies_k(rows, k):
    relation = Relation.from_rows(rows)
    result = KAnonymizer(k=k).anonymize(relation, ["x", "y"])
    assert is_k_anonymous(result.relation, ["x", "y"], k)
    assert len(result.relation) + result.suppressed_rows == len(relation)


# ---------------------------------------------------------------------------
# rewriter invariants
# ---------------------------------------------------------------------------

_POLICY = (
    PolicyBuilder()
    .module("M")
    .deny("person_id")
    .allow("x", condition="x > y")
    .allow("y")
    .allow("z", condition="z < 2", aggregation="AVG", group_by=["x", "y"], having="SUM(z) > 100")
    .allow("t")
    .allow("v")
    .build()
)


@given(select_queries())
@settings(max_examples=60, deadline=None)
def test_rewriter_never_leaks_denied_attributes_and_is_idempotent(query):
    rewriter = QueryRewriter(_POLICY)
    result = rewriter.rewrite(query, "M")
    if not result.compliant:
        return
    assert "person_id" not in collect_column_names(result.query)
    again = rewriter.rewrite(result.query, "M")
    assert again.sql == result.sql
