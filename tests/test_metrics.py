"""Tests for the information-loss metrics (Direct Distance, KL divergence)."""

import pytest

from repro.engine.table import Relation
from repro.metrics import (
    average_equivalence_class_size,
    direct_distance,
    discernibility_metric,
    information_loss_summary,
    kl_divergence,
    kl_divergence_relation,
    quality_ratio,
    suppression_ratio,
    value_distribution,
)


@pytest.fixture
def original():
    return Relation.from_rows(
        [
            {"x": 1.0, "y": 2.0, "c": "a"},
            {"x": 2.0, "y": 3.0, "c": "b"},
            {"x": 3.0, "y": 4.0, "c": "a"},
            {"x": 4.0, "y": 5.0, "c": "b"},
        ]
    )


def test_direct_distance_identical_relations(original):
    result = direct_distance(original, original.copy())
    assert result.changed_cells == 0
    assert result.ratio == 0.0
    assert result.quality == 1.0
    assert quality_ratio(original, original.copy()) == 1.0


def test_direct_distance_counts_changed_cells(original):
    modified = original.copy()
    modified.rows[0]["x"] = 99.0
    modified.rows[1]["c"] = "z"
    result = direct_distance(original, modified)
    assert result.changed_cells == 2
    assert result.total_cells == 12
    assert result.ratio == pytest.approx(2 / 12)
    assert result.per_column["x"] == 1
    assert result.per_column["c"] == 1


def test_direct_distance_missing_rows_count_fully(original):
    truncated = Relation(schema=original.schema, rows=original.to_dicts()[:2])
    result = direct_distance(original, truncated)
    assert result.changed_cells == 2 * 3  # two missing rows, three columns each


def test_direct_distance_numeric_tolerance(original):
    modified = original.copy()
    modified.rows[0]["x"] = 1.0001
    assert direct_distance(original, modified).changed_cells == 1
    assert direct_distance(original, modified, numeric_tolerance=0.01).changed_cells == 0


def test_direct_distance_restricted_columns(original):
    modified = original.copy()
    modified.rows[0]["x"] = 99.0
    result = direct_distance(original, modified, columns=["c"])
    assert result.changed_cells == 0


def test_direct_distance_formula_matches_paper_definition(original):
    """DD(R,R') must equal the double sum of per-cell indicator distances."""
    modified = original.copy()
    for row in modified.rows:
        row["y"] = 0.0
    result = direct_distance(original, modified)
    n, m = len(original), len(original.schema.names)
    manual = sum(
        1
        for i in range(n)
        for j, name in enumerate(original.schema.names)
        if original.rows[i].get(name) != modified.rows[i].get(name)
    )
    assert result.changed_cells == manual
    assert result.total_cells == n * m


def test_value_distribution_numeric_and_categorical():
    numeric = value_distribution([0.0, 0.5, 1.0, 1.0], bins=2)
    assert sum(numeric.values()) == pytest.approx(1.0)
    categorical = value_distribution(["a", "a", "b"])
    assert categorical["a"] == pytest.approx(2 / 3)
    assert value_distribution([]) == {}
    assert value_distribution([None, None]) == {}
    constant = value_distribution([3.0, 3.0])
    assert list(constant.values()) == [1.0]


def test_kl_divergence_properties():
    p = {"a": 0.5, "b": 0.5}
    assert kl_divergence(p, p) == pytest.approx(0.0)
    q = {"a": 0.9, "b": 0.1}
    assert kl_divergence(p, q) > 0
    # Not symmetric in general.
    assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))
    assert kl_divergence({}, q) == 0.0


def test_kl_divergence_relation_zero_for_identical(original):
    per_column = kl_divergence_relation(original, original.copy())
    assert per_column["__mean__"] == pytest.approx(0.0, abs=1e-9)


def test_kl_divergence_relation_detects_distribution_shift(original):
    shifted = original.map_rows(lambda row: {**row, "x": row["x"] + 100})
    per_column = kl_divergence_relation(original, shifted)
    assert per_column["x"] > 0.5
    assert per_column["c"] == pytest.approx(0.0, abs=1e-9)


def test_equivalence_class_metrics():
    relation = Relation.from_rows(
        [{"q": "a"}, {"q": "a"}, {"q": "a"}, {"q": "b"}, {"q": "b"}, {"q": "c"}]
    )
    assert average_equivalence_class_size(relation, ["q"]) == pytest.approx(2.0)
    assert discernibility_metric(relation, ["q"]) == 9 + 4 + 1
    empty = Relation.from_rows([{"q": 1}]).select(lambda r: False)
    assert average_equivalence_class_size(empty, ["q"]) == 0.0


def test_suppression_ratio(original):
    kept = Relation(schema=original.schema, rows=original.to_dicts()[:3])
    assert suppression_ratio(original, kept) == pytest.approx(0.25)
    assert suppression_ratio(original, original) == 0.0


def test_information_loss_summary_shape(original):
    modified = original.copy()
    modified.rows[0]["x"] = 50.0
    summary = information_loss_summary(original, modified)
    assert summary.direct_distance == 1
    assert 0 <= summary.direct_distance_ratio <= 1
    assert summary.quality == pytest.approx(1 - summary.direct_distance_ratio)
    assert summary.kl_divergence_mean >= 0
    assert summary.rows_original == 4
    flat = summary.as_dict()
    assert set(flat) >= {"direct_distance", "quality", "kl_mean", "suppression"}
