"""Tests for the network simulator and the end-to-end PArADISE processor."""

import pytest

from repro.anonymize import Anonymizer
from repro.engine.table import Relation
from repro.fragment import Topology
from repro.policy import PolicyBuilder, figure4_policy, open_policy, restrictive_policy
from repro.processor import NetworkSimulator, ParadiseProcessor
from repro.sensors.scenario import INTEGRATED_SCHEMA
from tests.conftest import PAPER_R_CODE, PAPER_SQL, make_sensor_relation


# ---------------------------------------------------------------------------
# network simulator
# ---------------------------------------------------------------------------


def test_network_loads_data_on_sensor_node(sensor_relation):
    network = NetworkSimulator(Topology.default_chain())
    network.load_sensor_data(sensor_relation)
    sensor_db = network.database("sensor")
    assert "d" in sensor_db and "stream" in sensor_db
    assert len(sensor_db.table("d")) == len(sensor_relation)
    with pytest.raises(KeyError):
        network.database("nope")


def test_network_ship_records_transfers(sensor_relation):
    network = NetworkSimulator(Topology.default_chain())
    network.ship(sensor_relation, "d1", "sensor", "appliance")
    network.ship(sensor_relation, "d2", "appliance", "pc")
    network.ship(sensor_relation.limit(10), "d_prime", "pc", "cloud")
    log = network.log
    assert len(log.transfers) == 3
    assert log.total_rows == 2 * len(sensor_relation) + 10
    assert log.rows_leaving_apartment == 10
    assert log.bytes_leaving_apartment > 0
    hops = log.by_hop()
    assert hops[-1]["leaves_apartment"] is True
    assert "d2" in network.database("pc")


def test_network_ship_to_same_node_is_not_a_transfer(sensor_relation):
    network = NetworkSimulator(Topology.default_chain())
    network.ship(sensor_relation, "d1", "pc", "pc")
    assert network.log.transfers == []
    assert "d1" in network.database("pc")
    network.reset_log()
    assert network.log.total_rows == 0


# ---------------------------------------------------------------------------
# end-to-end processor
# ---------------------------------------------------------------------------


@pytest.fixture
def processor(sensor_relation):
    proc = ParadiseProcessor(figure4_policy(), schema=INTEGRATED_SCHEMA)
    proc.load_data(sensor_relation)
    return proc


def test_process_paper_query_end_to_end(processor, sensor_relation):
    result = processor.process(PAPER_SQL, module_id="ActionFilter")
    assert result.admitted
    assert result.rewrite is not None and result.rewrite.compliant
    assert result.plan is not None and len(result.plan.fragments) == 4
    assert [e.node for e in result.executions] == ["sensor", "appliance", "appliance", "pc"]
    assert result.raw_input_rows == len(sensor_relation)
    assert result.result is not None
    # Far fewer rows leave the apartment than the raw data contains.
    assert result.rows_leaving_apartment < result.raw_input_rows
    assert result.data_reduction_ratio > 1
    assert "PArADISE" in result.summary()


def test_process_r_code_sets_remainder(processor):
    result = processor.process_r(PAPER_R_CODE, module_id="ActionFilter")
    assert result.remainder_call == "filterByClass(d_prime, action='walk', do.plot=F)"
    assert result.admitted


def test_rewritten_result_contains_no_denied_columns(sensor_relation):
    proc = ParadiseProcessor(restrictive_policy(), schema=INTEGRATED_SCHEMA)
    proc.load_data(sensor_relation)
    result = proc.process("SELECT person_id, x, y, z, t, activity FROM d", "ActionFilter")
    assert result.admitted
    assert "person_id" not in result.result.schema
    assert "activity" not in result.result.schema


def test_policy_conditions_hold_on_shipped_rows(processor):
    result = processor.process("SELECT x, y, t FROM d", module_id="ActionFilter")
    # The policy requires x > y on every revealed tuple.
    for row in result.result.rows:
        if isinstance(row.get("x"), (int, float)) and isinstance(row.get("y"), (int, float)):
            assert row["x"] > row["y"]


def test_no_pushdown_baseline_ships_everything(processor, sensor_relation):
    pushdown = processor.process(PAPER_SQL, "ActionFilter", anonymize=False)
    baseline = processor.process(
        PAPER_SQL, "ActionFilter", pushdown=False, apply_rewriting=False, anonymize=False
    )
    assert baseline.rows_leaving_apartment == len(sensor_relation)
    assert pushdown.rows_leaving_apartment < baseline.rows_leaving_apartment
    # The baseline still computes the analysis at the cloud.
    assert baseline.executions[-1].node == "cloud"


def test_unknown_module_is_refused(processor):
    result = processor.process(PAPER_SQL, module_id="Nobody")
    assert not result.admitted
    assert result.result is None
    assert "no policy" in result.admission.reasons[0]


def test_fully_denied_query_is_refused(sensor_relation):
    policy = PolicyBuilder().module("M").deny("secret").allow("x").build()
    proc = ParadiseProcessor(policy, schema=None)
    proc.load_data(sensor_relation)
    result = proc.process("SELECT secret FROM d", module_id="M")
    assert not result.admitted


def test_anonymization_step_runs_inside_apartment(sensor_relation):
    proc = ParadiseProcessor(
        open_policy(),
        schema=INTEGRATED_SCHEMA,
        anonymizer=Anonymizer(algorithm="k_anonymity", k=5),
    )
    proc.load_data(sensor_relation)
    result = proc.process("SELECT x, y, z, t FROM d WHERE z < 2", "ActionFilter")
    assert result.anonymization is not None and result.anonymization.applied
    assert result.anonymization.information_loss.direct_distance > 0
    # d' leaving the apartment is the anonymized relation.
    assert result.rows_leaving_apartment == len(result.result)


def test_query_interval_enforcement_between_runs(sensor_relation):
    policy = (
        PolicyBuilder()
        .module("M")
        .allow("x")
        .allow("t")
        .query_interval(3600)
        .build()
    )
    proc = ParadiseProcessor(policy, enforce_query_interval=True)
    proc.load_data(sensor_relation)
    first = proc.process("SELECT x, t FROM d", "M")
    second = proc.process("SELECT x, t FROM d", "M")
    assert first.admitted
    assert not second.admitted
    assert any("interval" in reason for reason in second.admission.reasons)


def test_custom_topology_without_appliance(sensor_relation):
    topology = Topology.cloud_only()
    proc = ParadiseProcessor(figure4_policy(), topology=topology, schema=INTEGRATED_SCHEMA)
    proc.load_data(sensor_relation)
    result = proc.process(PAPER_SQL, "ActionFilter")
    assert result.admitted
    assert {e.node for e in result.executions} <= {"sensor", "cloud"}


def test_load_device_tables_available_on_sensor(meeting_data):
    proc = ParadiseProcessor(open_policy("Reporter"))
    proc.load_data(meeting_data.integrated)
    proc.load_device_tables(meeting_data.device_tables)
    result = proc.process(
        "SELECT COUNT(*) AS n FROM powersocket", module_id="Reporter", anonymize=False
    )
    assert result.admitted
    assert result.result.rows[0]["n"] > 0
