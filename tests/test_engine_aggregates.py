"""Tests for aggregate functions, including the SQL:2003 regression family."""

import math

import pytest

from repro.engine.aggregates import compute_aggregate, is_known_aggregate
from repro.engine.errors import ExecutionError


def test_count_sum_avg_min_max():
    values = [[1, 2, 3, None]]
    assert compute_aggregate("COUNT", values) == 3
    assert compute_aggregate("SUM", values) == 6
    assert compute_aggregate("AVG", values) == 2
    assert compute_aggregate("MIN", values) == 1
    assert compute_aggregate("MAX", values) == 3


def test_count_star_counts_nulls_too():
    assert compute_aggregate("COUNT", [[1, None, None]], is_star=True) == 3


def test_sum_preserves_int_when_all_int():
    assert compute_aggregate("SUM", [[1, 2]]) == 3
    assert isinstance(compute_aggregate("SUM", [[1, 2]]), int)
    assert isinstance(compute_aggregate("SUM", [[1.0, 2.0]]), float)


def test_empty_aggregates_return_none_or_zero():
    assert compute_aggregate("SUM", [[]]) is None
    assert compute_aggregate("AVG", [[None, None]]) is None
    assert compute_aggregate("COUNT", [[]]) == 0


def test_distinct_aggregation():
    assert compute_aggregate("COUNT", [[1, 1, 2]], distinct=True) == 2
    assert compute_aggregate("SUM", [[1, 1, 2]], distinct=True) == 3


def test_statistics_aggregates():
    values = [[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]]
    assert compute_aggregate("STDDEV_POP", values) == pytest.approx(2.0)
    assert compute_aggregate("VAR_POP", values) == pytest.approx(4.0)
    assert compute_aggregate("MEDIAN", values) == pytest.approx(4.5)
    assert compute_aggregate("STDDEV", [[1.0]]) is None


def test_regr_slope_and_intercept_on_perfect_line():
    xs = [1.0, 2.0, 3.0, 4.0]
    ys = [2 * x + 1 for x in xs]  # y = 2x + 1
    assert compute_aggregate("REGR_SLOPE", [ys, xs]) == pytest.approx(2.0)
    assert compute_aggregate("REGR_INTERCEPT", [ys, xs]) == pytest.approx(1.0)
    assert compute_aggregate("REGR_COUNT", [ys, xs]) == 4
    assert compute_aggregate("REGR_R2", [ys, xs]) == pytest.approx(1.0)
    assert compute_aggregate("CORR", [ys, xs]) == pytest.approx(1.0)


def test_regression_ignores_null_pairs():
    xs = [1.0, None, 3.0]
    ys = [1.0, 5.0, 3.0]
    assert compute_aggregate("REGR_COUNT", [ys, xs]) == 2
    assert compute_aggregate("REGR_SLOPE", [ys, xs]) == pytest.approx(1.0)


def test_regression_degenerate_cases():
    # Fewer than two points or zero variance in x -> NULL.
    assert compute_aggregate("REGR_SLOPE", [[1.0], [1.0]]) is None
    assert compute_aggregate("REGR_SLOPE", [[1.0, 2.0], [3.0, 3.0]]) is None
    assert compute_aggregate("CORR", [[1.0, 1.0], [1.0, 2.0]]) is None


def test_covariance():
    xs = [1.0, 2.0, 3.0]
    ys = [2.0, 4.0, 6.0]
    assert compute_aggregate("COVAR_POP", [ys, xs]) == pytest.approx(4.0 / 3.0)
    assert compute_aggregate("COVAR_SAMP", [ys, xs]) == pytest.approx(2.0)


def test_wrong_arity_raises():
    with pytest.raises(ExecutionError):
        compute_aggregate("REGR_SLOPE", [[1.0, 2.0]])
    with pytest.raises(ExecutionError):
        compute_aggregate("SUM", [])
    with pytest.raises(ExecutionError):
        compute_aggregate("NOT_AN_AGG", [[1]])


def test_is_known_aggregate():
    assert is_known_aggregate("avg")
    assert is_known_aggregate("REGR_INTERCEPT")
    assert not is_known_aggregate("UPPER")
