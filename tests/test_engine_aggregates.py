"""Tests for aggregate functions, including the SQL:2003 regression family."""

import math
import random
import statistics

import pytest

from repro.engine.aggregates import (
    compute_aggregate,
    is_decomposable_aggregate,
    is_known_aggregate,
    make_accumulator,
)
from repro.engine.errors import ExecutionError


def test_count_sum_avg_min_max():
    values = [[1, 2, 3, None]]
    assert compute_aggregate("COUNT", values) == 3
    assert compute_aggregate("SUM", values) == 6
    assert compute_aggregate("AVG", values) == 2
    assert compute_aggregate("MIN", values) == 1
    assert compute_aggregate("MAX", values) == 3


def test_count_star_counts_nulls_too():
    assert compute_aggregate("COUNT", [[1, None, None]], is_star=True) == 3


def test_sum_preserves_int_when_all_int():
    assert compute_aggregate("SUM", [[1, 2]]) == 3
    assert isinstance(compute_aggregate("SUM", [[1, 2]]), int)
    assert isinstance(compute_aggregate("SUM", [[1.0, 2.0]]), float)


def test_empty_aggregates_return_none_or_zero():
    assert compute_aggregate("SUM", [[]]) is None
    assert compute_aggregate("AVG", [[None, None]]) is None
    assert compute_aggregate("COUNT", [[]]) == 0


def test_distinct_aggregation():
    assert compute_aggregate("COUNT", [[1, 1, 2]], distinct=True) == 2
    assert compute_aggregate("SUM", [[1, 1, 2]], distinct=True) == 3


def test_statistics_aggregates():
    values = [[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]]
    assert compute_aggregate("STDDEV_POP", values) == pytest.approx(2.0)
    assert compute_aggregate("VAR_POP", values) == pytest.approx(4.0)
    assert compute_aggregate("MEDIAN", values) == pytest.approx(4.5)
    assert compute_aggregate("STDDEV", [[1.0]]) is None


def test_regr_slope_and_intercept_on_perfect_line():
    xs = [1.0, 2.0, 3.0, 4.0]
    ys = [2 * x + 1 for x in xs]  # y = 2x + 1
    assert compute_aggregate("REGR_SLOPE", [ys, xs]) == pytest.approx(2.0)
    assert compute_aggregate("REGR_INTERCEPT", [ys, xs]) == pytest.approx(1.0)
    assert compute_aggregate("REGR_COUNT", [ys, xs]) == 4
    assert compute_aggregate("REGR_R2", [ys, xs]) == pytest.approx(1.0)
    assert compute_aggregate("CORR", [ys, xs]) == pytest.approx(1.0)


def test_regression_ignores_null_pairs():
    xs = [1.0, None, 3.0]
    ys = [1.0, 5.0, 3.0]
    assert compute_aggregate("REGR_COUNT", [ys, xs]) == 2
    assert compute_aggregate("REGR_SLOPE", [ys, xs]) == pytest.approx(1.0)


def test_regression_degenerate_cases():
    # Fewer than two points or zero variance in x -> NULL.
    assert compute_aggregate("REGR_SLOPE", [[1.0], [1.0]]) is None
    assert compute_aggregate("REGR_SLOPE", [[1.0, 2.0], [3.0, 3.0]]) is None
    assert compute_aggregate("CORR", [[1.0, 1.0], [1.0, 2.0]]) is None


def test_covariance():
    xs = [1.0, 2.0, 3.0]
    ys = [2.0, 4.0, 6.0]
    assert compute_aggregate("COVAR_POP", [ys, xs]) == pytest.approx(4.0 / 3.0)
    assert compute_aggregate("COVAR_SAMP", [ys, xs]) == pytest.approx(2.0)


def test_wrong_arity_raises():
    with pytest.raises(ExecutionError):
        compute_aggregate("REGR_SLOPE", [[1.0, 2.0]])
    with pytest.raises(ExecutionError):
        compute_aggregate("SUM", [])
    with pytest.raises(ExecutionError):
        compute_aggregate("NOT_AN_AGG", [[1]])


def test_is_known_aggregate():
    assert is_known_aggregate("avg")
    assert is_known_aggregate("REGR_INTERCEPT")
    assert not is_known_aggregate("UPPER")


# ---------------------------------------------------------------------------
# exact arithmetic and the partial-state protocol
# ---------------------------------------------------------------------------


def _run_accumulator(name, values, **kwargs):
    accumulator = make_accumulator(
        name,
        is_star=kwargs.get("is_star", False),
        distinct=kwargs.get("distinct", False),
        arg_count=1,
    )
    for value in values:
        accumulator.add((value,))
    return accumulator


def test_sum_of_large_ints_is_exact():
    """SUM over ints beyond 2**53 must not round through float.

    This is the compiled ``SumAccumulator`` regression: it used to keep a
    float running total and cast back with ``int(...)``, silently losing
    the low bits the batch path (and SQL semantics) preserve.
    """
    values = [2**53 + 1, 2**53 + 3, 7, -2**60, 2**60]
    exact = sum(values)
    assert float(exact) != exact  # the float detour would corrupt it
    assert compute_aggregate("SUM", [values]) == exact
    accumulator = _run_accumulator("SUM", values)
    assert accumulator.result() == exact
    assert isinstance(accumulator.result(), int)


def test_sum_large_int_partials_merge_exactly():
    values = [2**53 + 1, 1, 2**53 + 3, 5, -2**57, 2**57 + 11]
    merged = make_accumulator("SUM", is_star=False, distinct=False, arg_count=1)
    for split in (values[:2], values[2:3], values[3:]):
        merged.merge(_run_accumulator("SUM", split).partial())
    assert merged.finalize() == sum(values)


def test_sum_mixed_int_float_matches_batch():
    values = [2**53 + 1, 0.5, 3, None, 2.25]
    batch = compute_aggregate("SUM", [values])
    assert _run_accumulator("SUM", values).result() == batch
    assert isinstance(batch, float)


def test_stddev_variance_match_statistics_module():
    rng = random.Random(7)
    data = [rng.uniform(-50, 50) for _ in range(60)]
    assert compute_aggregate("STDDEV", [data]) == statistics.stdev(data)
    assert compute_aggregate("STDDEV_POP", [data]) == statistics.pstdev(data)
    assert compute_aggregate("VARIANCE", [data]) == statistics.variance(data)
    assert compute_aggregate("VAR_POP", [data]) == statistics.pvariance(data)


@pytest.mark.parametrize(
    "name",
    ["COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "STDDEV_POP", "VARIANCE", "VAR_POP"],
)
def test_partial_merge_finalize_matches_batch(name):
    """Any split of the input must merge into the exact batch result."""
    rng = random.Random(11)
    values = [
        None if rng.random() < 0.25 else round(rng.uniform(-10, 10), 3)
        for _ in range(120)
    ]
    batch = compute_aggregate(name, [values])
    for cuts in ([40, 80], [1, 2, 119], [0, 60], [120]):
        merged = make_accumulator(name, is_star=False, distinct=False, arg_count=1)
        start = 0
        for cut in cuts + [len(values)]:
            merged.merge(_run_accumulator(name, values[start:cut]).partial())
            start = cut
        assert merged.finalize() == batch


def test_count_star_partials():
    left = make_accumulator("COUNT", is_star=True, distinct=False, arg_count=1)
    right = make_accumulator("COUNT", is_star=True, distinct=False, arg_count=1)
    for _ in range(3):
        left.add((1,))
    for _ in range(5):
        right.add((1,))
    left.merge(right.partial())
    assert left.finalize() == 8


def test_empty_partials_merge_to_empty_result():
    for name, expected in [("SUM", None), ("AVG", None), ("COUNT", 0), ("MIN", None)]:
        merged = make_accumulator(name, is_star=False, distinct=False, arg_count=1)
        for _ in range(3):
            merged.merge(
                make_accumulator(name, is_star=False, distinct=False, arg_count=1).partial()
            )
        assert merged.finalize() == expected


def test_min_max_ties_keep_partition_order_semantics():
    # MIN keeps the *first* minimal value; merging in partition order must too.
    left = _run_accumulator("MIN", [1.0])
    right = _run_accumulator("MIN", [1])  # equal but later
    left.merge(right.partial())
    assert left.finalize() == 1.0 and isinstance(left.finalize(), float)


def test_sum_avg_non_finite_inputs_match_batch():
    """inf/nan inputs must not poison the exact expansion into NaN."""
    inf, nan = float("inf"), float("nan")
    for values in ([inf, 1.0], [inf, inf, 2.0], [-inf, 1.0]):
        assert _run_accumulator("SUM", values).result() == compute_aggregate("SUM", [values])
        assert _run_accumulator("AVG", values).result() == compute_aggregate("AVG", [values])
    assert math.isnan(_run_accumulator("SUM", [nan, 1.0]).result())
    assert math.isnan(_run_accumulator("AVG", [inf, nan]).result())
    # Mixed +inf/-inf raises the same error as the batch fsum path.
    with pytest.raises(ValueError):
        compute_aggregate("SUM", [[inf, -inf]])
    with pytest.raises(ValueError):
        _run_accumulator("SUM", [inf, -inf]).result()
    # Non-finite partials merge faithfully too.
    left = _run_accumulator("SUM", [inf, 1.0])
    left.merge(_run_accumulator("SUM", [2.0]).partial())
    assert left.finalize() == inf


def test_sum_int_beyond_float_range_stays_exact():
    """An all-int SUM past float range must not fail on the float image."""
    values = [10**400, 10**400, -7]
    expected = sum(values)
    assert compute_aggregate("SUM", [values]) == expected
    assert _run_accumulator("SUM", values).result() == expected
    merged = make_accumulator("SUM", is_star=False, distinct=False, arg_count=1)
    merged.merge(_run_accumulator("SUM", values[:1]).partial())
    merged.merge(_run_accumulator("SUM", values[1:]).partial())
    assert merged.finalize() == expected
    # Once a float appears the batch path overflows converting the huge int;
    # the accumulator must raise the same error instead of guessing.
    mixed = [10**400, 0.5]
    with pytest.raises(OverflowError):
        compute_aggregate("SUM", [mixed])
    with pytest.raises(OverflowError):
        _run_accumulator("SUM", mixed).result()


def test_is_decomposable_aggregate():
    assert is_decomposable_aggregate("SUM")
    assert is_decomposable_aggregate("avg")
    assert is_decomposable_aggregate("STDDEV")
    assert is_decomposable_aggregate("COUNT", is_star=True)
    assert not is_decomposable_aggregate("SUM", distinct=True)
    assert not is_decomposable_aggregate("MEDIAN")
    assert not is_decomposable_aggregate("REGR_SLOPE", arg_count=2)
    # DISTINCT/buffered accumulators expose no partial-state protocol.
    buffered = make_accumulator("SUM", is_star=False, distinct=True, arg_count=1)
    assert not hasattr(buffered, "partial")
