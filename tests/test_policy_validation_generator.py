"""Tests for policy validation and automatic policy generation."""

import pytest

from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import DataType
from repro.policy import PolicyBuilder, PrivacyPolicy
from repro.policy.generator import GeneratorSettings, PolicyGenerator
from repro.policy.model import AggregationRule, AttributeRule, ModulePolicy
from repro.policy.validation import has_errors, validate_policy
from repro.sql.parser import parse

SCHEMA = Schema(
    [
        ColumnDef(name="person_id", data_type=DataType.INTEGER, identifying=True),
        ColumnDef(name="x", data_type=DataType.FLOAT, quasi_identifier=True),
        ColumnDef(name="y", data_type=DataType.FLOAT, quasi_identifier=True),
        ColumnDef(name="z", data_type=DataType.FLOAT, sensitive=True),
        ColumnDef(name="activity", data_type=DataType.TEXT, sensitive=True),
        ColumnDef(name="t", data_type=DataType.FLOAT),
    ]
)


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------


def test_valid_figure4_policy_has_no_errors(paper_policy):
    issues = validate_policy(paper_policy)
    assert not has_errors(issues)


def test_empty_policy_is_an_error():
    issues = validate_policy(PrivacyPolicy())
    assert has_errors(issues)


def test_unparseable_condition_is_an_error():
    policy = PolicyBuilder().module("M").allow("x", condition="x >>> 1").build()
    issues = validate_policy(policy)
    assert has_errors(issues)
    assert any("does not parse" in issue.message for issue in issues)


def test_condition_referencing_denied_attribute_is_an_error():
    policy = (
        PolicyBuilder().module("M").deny("y").allow("x", condition="x > y").build()
    )
    issues = validate_policy(policy)
    assert has_errors(issues)


def test_aggregation_grouped_by_denied_attribute_is_an_error():
    policy = (
        PolicyBuilder()
        .module("M")
        .deny("y")
        .allow("z", aggregation="AVG", group_by=["y"])
        .build()
    )
    issues = validate_policy(policy)
    assert has_errors(issues)


def test_unknown_referenced_attribute_is_a_warning_only():
    policy = PolicyBuilder().module("M").allow("x", condition="x > unknown_attr").build()
    issues = validate_policy(policy)
    assert issues
    assert not has_errors(issues)


def test_negative_interval_is_an_error():
    policy = PolicyBuilder().module("M").allow("x").query_interval(-1).build()
    assert has_errors(validate_policy(policy))


def test_module_without_attributes_warns():
    policy = PrivacyPolicy(modules={"m": ModulePolicy(module_id="m")})
    issues = validate_policy(policy)
    assert any(issue.severity == "warning" for issue in issues)


def test_aggregation_on_denied_attribute_warns():
    module = ModulePolicy(module_id="m")
    module.add_rule(
        AttributeRule(name="z", allow=False, aggregation=AggregationRule("AVG"))
    )
    policy = PrivacyPolicy(modules={"m": module})
    issues = validate_policy(policy)
    assert any("ignored" in issue.message for issue in issues)


# ---------------------------------------------------------------------------
# automatic generation
# ---------------------------------------------------------------------------


def test_generator_denies_identifying_and_textual_sensitive_columns():
    policy = PolicyGenerator().generate(SCHEMA, module_id="Gen")
    module = policy.module("Gen")
    assert module.rule_for("person_id").allow is False
    assert module.rule_for("activity").allow is False


def test_generator_forces_aggregation_on_numeric_sensitive_columns():
    policy = PolicyGenerator(GeneratorSettings(minimum_group_size=7)).generate(SCHEMA, "Gen")
    z_rule = policy.module("Gen").rule_for("z")
    assert z_rule.allow
    assert z_rule.aggregation.aggregation_type == "AVG"
    assert set(z_rule.aggregation.group_by) == {"x", "y"}
    assert "7" in z_rule.aggregation.having


def test_generator_reduces_precision_of_quasi_identifiers():
    policy = PolicyGenerator().generate(SCHEMA, "Gen")
    assert policy.module("Gen").rule_for("x").max_precision == 1
    assert policy.module("Gen").rule_for("t").max_precision is None


def test_generated_policy_passes_validation():
    policy = PolicyGenerator().generate(SCHEMA, "Gen")
    assert not has_errors(validate_policy(policy))


def test_adapt_to_query_adds_rules_only_for_new_attributes():
    generator = PolicyGenerator()
    policy = generator.generate(SCHEMA.project(["x", "y"]), "Gen")
    query = parse("SELECT x, z, extra FROM d WHERE t > 0")
    added = generator.adapt_to_query(policy, "Gen", query, schema=SCHEMA)
    assert set(added) == {"z", "t", "extra"}
    module = policy.module("Gen")
    assert module.rule_for("z").aggregation is not None  # classified via the schema
    assert module.rule_for("extra").allow  # unknown column defaults to allowed
    # Running the adaptation again adds nothing.
    assert generator.adapt_to_query(policy, "Gen", query, schema=SCHEMA) == []


def test_adapt_to_device_extends_policy():
    generator = PolicyGenerator()
    policy = generator.generate(SCHEMA.project(["x"]), "Gen")
    device_schema = Schema(
        [
            ColumnDef(name="pressure", data_type=DataType.FLOAT, sensitive=True),
            ColumnDef(name="cell_x", data_type=DataType.INTEGER, quasi_identifier=True),
        ]
    )
    added = generator.adapt_to_device(policy, "Gen", device_schema)
    assert set(added) == {"pressure", "cell_x"}
    assert policy.module("Gen").rule_for("pressure").aggregation is not None
