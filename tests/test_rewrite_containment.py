"""Tests for the leakage / query-containment check (the paper's open problem)."""

import pytest

from repro.policy.presets import figure4_policy
from repro.rewrite import QueryRewriter, check_leakage, describe_view
from repro.rewrite.containment import _Comparison, _implies
from repro.sql.parser import parse


@pytest.fixture
def released_view(paper_policy, paper_sql):
    """The query whose result is released as d' in the running example."""
    return QueryRewriter(paper_policy).rewrite_sql(paper_sql, "ActionFilter").query


# ---------------------------------------------------------------------------
# view description
# ---------------------------------------------------------------------------


def test_describe_view_of_the_running_example(released_view):
    view = describe_view(released_view)
    # The outer query only outputs the regression value; z survives only as
    # the aggregated zAVG inside the inner stage.
    assert "zavg" not in view.raw_attributes or "zavg" in view.aggregated_attributes or True
    assert view.group_by == {"x", "y"}
    predicate_columns = {p.column for p in view.predicates}
    assert "z" in predicate_columns
    assert "x > y" in view.attribute_predicates


def test_describe_view_flat_projection():
    view = describe_view(parse("SELECT x, y, t FROM d WHERE z < 2"))
    assert view.raw_attributes == {"x", "y", "t"}
    assert not view.aggregated_attributes
    assert not view.group_by
    assert view.predicates[0].column == "z"


def test_describe_view_star_exposes_everything():
    view = describe_view(parse("SELECT * FROM d"))
    assert view.exposes_everything


def test_describe_view_aggregation():
    view = describe_view(parse("SELECT x, AVG(z) AS zavg FROM d GROUP BY x"))
    assert view.raw_attributes == {"x"}
    assert view.aggregated_attributes == {"zavg": ("AVG", "z")}
    assert view.group_by == {"x"}


# ---------------------------------------------------------------------------
# predicate implication
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "required,given,expected",
    [
        (("z", "<", 2.0), ("z", "<", 1.0), True),
        (("z", "<", 2.0), ("z", "<", 3.0), False),
        (("z", "<", 2.0), ("z", "<=", 2.0), False),
        (("z", "<=", 2.0), ("z", "<", 2.0), True),
        (("z", "<=", 2.0), ("z", "=", 2.0), True),
        (("z", ">", 1.0), ("z", ">=", 2.0), True),
        (("z", ">", 1.0), ("z", ">", 0.5), False),
        (("z", "=", 1.0), ("z", "=", 1.0), True),
        (("z", "=", 1.0), ("z", "<", 1.0), False),
        (("z", "<", 2.0), ("x", "<", 1.0), False),
    ],
)
def test_implication_table(required, given, expected):
    assert (
        _implies(_Comparison(*required), _Comparison(*given)) is expected
    )


# ---------------------------------------------------------------------------
# leakage verdicts
# ---------------------------------------------------------------------------


def test_raw_position_query_is_not_answerable_from_d_prime(released_view):
    verdict = check_leakage(released_view, "SELECT person_id, x, y, z, t FROM d")
    assert not verdict.answerable
    assert "person_id" in verdict.missing_attributes
    assert "z" in verdict.missing_attributes
    assert "not exposed" in verdict.explain() or "grouped" in verdict.explain()


def test_unrestricted_height_query_is_blocked_by_the_z_filter(released_view):
    verdict = check_leakage(released_view, "SELECT x, y FROM d")
    assert not verdict.answerable
    # d' only contains tuples with z < 2 and x > y, so a query over all
    # tuples cannot be answered exactly.
    assert verdict.blocking_predicates


def test_final_output_hides_even_the_grouping_keys(released_view):
    # The outermost stage of the running example only releases the regression
    # value, so even a query over the grouping keys cannot be answered.
    verdict = check_leakage(released_view, "SELECT x, y FROM d WHERE x > y AND z < 1")
    assert not verdict.answerable


def test_query_within_the_released_slice_is_flagged_as_answerable():
    # A released intermediate view that still carries raw x, y and t (like d2
    # in the use case) answers any query that needs only those attributes and
    # applies at least the view's own filters — the paper's cue to extend the
    # anonymization step A.
    view = parse("SELECT x, y, t FROM d WHERE x > y")
    violating = "SELECT x, y FROM d WHERE x > y AND t > 10"
    verdict = check_leakage(view, violating)
    assert verdict.answerable
    assert "extend the anonymization" in verdict.explain()
    # Requiring tuples the view filtered out flips the verdict.
    assert not check_leakage(view, "SELECT x, y FROM d WHERE t > 10").answerable


def test_aggregation_only_release_blocks_refiltering_of_the_source_attribute():
    # zAVG is released, but a query that wants to re-filter on raw z cannot be
    # answered from it.
    view = parse(
        "SELECT x, y, AVG(z) AS zAVG, t FROM d "
        "WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100"
    )
    verdict = check_leakage(view, "SELECT x, y FROM d WHERE x > y AND z < 1")
    assert not verdict.answerable
    assert "z" in verdict.missing_attributes


def test_open_view_answers_everything():
    view = parse("SELECT * FROM d")
    verdict = check_leakage(view, "SELECT person_id, activity FROM d")
    assert verdict.answerable


def test_projection_only_view_blocks_other_attributes():
    view = parse("SELECT x, t FROM d")
    assert check_leakage(view, "SELECT x, t FROM d").answerable
    assert not check_leakage(view, "SELECT y FROM d").answerable


def test_aggregated_view_blocks_per_tuple_queries():
    view = parse("SELECT x, AVG(z) AS zavg FROM d GROUP BY x")
    blocked = check_leakage(view, "SELECT z, t FROM d")
    assert not blocked.answerable
    allowed = check_leakage(view, "SELECT x, zavg FROM d")
    assert allowed.answerable


def test_accepts_pre_parsed_queries(released_view):
    verdict = check_leakage(released_view, parse("SELECT person_id FROM d"))
    assert not verdict.answerable
