"""Tests for row-level expression evaluation."""

import pytest

from repro.engine.errors import ExecutionError
from repro.engine.evaluator import EvaluationContext, evaluate, evaluate_predicate
from repro.sql.parser import parse_expression
from repro.sql.render import render_expression


def ev(text, scope=None, aggregates=None):
    context = EvaluationContext(scope=scope or {}, aggregates=aggregates or {})
    return evaluate(parse_expression(text), context)


def test_literals_and_columns():
    assert ev("42") == 42
    assert ev("'walk'") == "walk"
    assert ev("TRUE") is True
    assert ev("NULL") is None
    assert ev("x", {"x": 7}) == 7


def test_qualified_column_lookup():
    scope = {"x": 1, "d.x": 2}
    assert ev("d.x", scope) == 2
    assert ev("x", scope) == 1


def test_unknown_column_raises():
    with pytest.raises(ExecutionError):
        ev("missing", {"x": 1})


def test_parent_scope_resolution():
    parent = EvaluationContext(scope={"above": 10})
    child = EvaluationContext(scope={"below": 1}, parent=parent)
    assert evaluate(parse_expression("above + below"), child) == 11


def test_arithmetic_and_null_propagation():
    assert ev("1 + 2 * 3") == 7
    assert ev("x + 1", {"x": None}) is None
    assert ev("10 / 4") == 2.5
    assert ev("10 / 0") is None
    assert ev("7 % 3") == 1
    assert ev("-x", {"x": 3}) == -3
    assert ev("'a' || 'b'") == "ab"


def test_comparisons():
    assert ev("x > y", {"x": 2, "y": 1}) is True
    assert ev("x > y", {"x": 1, "y": 2}) is False
    assert ev("x = y", {"x": 1, "y": None}) is None
    assert ev("x <> y", {"x": 1, "y": 2}) is True


def test_three_valued_logic():
    assert ev("TRUE AND NULL") is None
    assert ev("FALSE AND NULL") is False
    assert ev("TRUE OR NULL") is True
    assert ev("FALSE OR NULL") is None
    assert ev("NOT NULL") is None


def test_predicate_treats_null_as_false():
    context = EvaluationContext(scope={"z": None})
    assert evaluate_predicate(parse_expression("z < 2"), context) is False
    assert evaluate_predicate(None, context) is True


def test_between_in_like_isnull():
    assert ev("z BETWEEN 0 AND 2", {"z": 1}) is True
    assert ev("z NOT BETWEEN 0 AND 2", {"z": 1}) is False
    assert ev("c IN ('a', 'b')", {"c": "b"}) is True
    assert ev("c NOT IN ('a', 'b')", {"c": "x"}) is True
    assert ev("c LIKE 'wa%'", {"c": "walk"}) is True
    assert ev("c LIKE 'w_lk'", {"c": "walk"}) is True
    assert ev("x IS NULL", {"x": None}) is True
    assert ev("x IS NOT NULL", {"x": None}) is False


def test_like_is_case_sensitive():
    """Standard SQL LIKE must not match across case (it used to ILIKE)."""
    assert ev("c LIKE 'WALK'", {"c": "walk"}) is False
    assert ev("c LIKE 'walk'", {"c": "walk"}) is True
    assert ev("c LIKE 'W%'", {"c": "walk"}) is False
    assert ev("c NOT LIKE 'WA%'", {"c": "walk"}) is True
    assert ev("c LIKE 'Wa%'", {"c": "Walk"}) is True


def test_like_case_sensitivity_compiled_matches_interpreted():
    from repro.engine.compile import ExpressionCompiler

    compiler = ExpressionCompiler()
    for text, scope in [
        ("c LIKE 'WALK'", {"c": "walk"}),
        ("c LIKE 'walk'", {"c": "walk"}),
        ("c LIKE p", {"c": "walk", "p": "W%"}),
        ("c NOT LIKE 'W_lk'", {"c": "walk"}),
    ]:
        expression = parse_expression(text)
        context = EvaluationContext(scope=scope)
        assert compiler.compile(expression)(context) == evaluate(expression, context)


def test_case_expression():
    assert ev("CASE WHEN z < 1 THEN 'low' ELSE 'high' END", {"z": 0.5}) == "low"
    assert ev("CASE WHEN z < 1 THEN 'low' END", {"z": 2}) is None


def test_cast():
    assert ev("CAST('3' AS INTEGER)") == 3
    assert ev("CAST(x AS TEXT)", {"x": 2}) == "2"


def test_scalar_function_calls():
    assert ev("ROUND(x, 1)", {"x": 2.34}) == 2.3
    assert ev("COALESCE(x, 0)", {"x": None}) == 0


def test_aggregate_outside_group_context_raises():
    with pytest.raises(ExecutionError):
        ev("SUM(x)", {"x": 1})


def test_precomputed_aggregate_lookup():
    expression = parse_expression("SUM(z) > 100")
    key = render_expression(parse_expression("SUM(z)"))
    context = EvaluationContext(scope={}, aggregates={key: 150})
    assert evaluate(expression, context) is True


def test_subquery_requires_executor():
    with pytest.raises(ExecutionError):
        ev("EXISTS (SELECT 1 FROM d)")
