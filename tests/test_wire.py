"""Tests for the compact partial-state wire format (repro.engine.wire)."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.engine.aggregates import make_accumulator
from repro.engine.schema import Schema
from repro.engine.table import Relation
from repro.engine.wire import WireFormatError, pack_value, packed_size, unpack_value


def _acc(name, values, **kwargs):
    accumulator = make_accumulator(
        name,
        is_star=kwargs.pop("is_star", False),
        distinct=kwargs.pop("distinct", False),
        arg_count=1,
    )
    for value in values:
        accumulator.add((value,))
    return accumulator


REAL_STATES = [
    _acc("COUNT", [1, None, 3]).partial(),
    _acc("SUM", [1, 2, 3]).partial(),  # exact all-int path
    _acc("SUM", [2**70, -5, 1]).partial(),  # bigint beyond float range
    _acc("SUM", [0.1, 0.2, 1e300, -1e300]).partial(),  # Shewchuk expansion
    _acc("SUM", [math.inf, 1.0, math.nan]).partial(),  # specials flags
    _acc("AVG", [0.5, None, 2.25]).partial(),
    _acc("MIN", ["alpha", "beta"]).partial(),
    _acc("MAX", [None]).partial(),
    _acc("STDDEV", [0.1, 0.7, 1.3]).partial(),  # exact rational moments
    _acc("VAR_POP", [1e-12, 3.5]).partial(),
    make_accumulator("COUNT", is_star=True, distinct=False, arg_count=1).partial(),
]


@pytest.mark.parametrize("state", REAL_STATES, ids=range(len(REAL_STATES)))
def test_roundtrip_real_accumulator_states(state):
    payload = pack_value(state)
    decoded = unpack_value(payload)
    assert decoded == state
    # Bit-for-bit on the types too (True != 1 semantically for merge()).
    assert repr(decoded) == repr(state)


@pytest.mark.parametrize("state", REAL_STATES, ids=range(len(REAL_STATES)))
def test_packed_size_matches_encoding(state):
    assert packed_size(state) == len(pack_value(state))


def test_roundtrip_scalars_and_nesting():
    values = [
        None,
        True,
        False,
        0,
        -1,
        2**63 - 1,
        -(2**63),
        2**63,  # first bigint
        -(2**64) - 7,
        1.5,
        -0.0,
        math.inf,
        "state",
        "ünïcode",
        Fraction(-3, 7),
        Fraction(10**40, 3),
        ((1, (2.5, None)), Fraction(1, 3), "x"),
        (),
    ]
    for value in values:
        assert unpack_value(pack_value(value)) == value
        assert packed_size(value) == len(pack_value(value))


def test_nan_roundtrip():
    decoded = unpack_value(pack_value(math.nan))
    assert math.isnan(decoded)


def test_unsupported_type_raises():
    with pytest.raises(WireFormatError):
        pack_value([1, 2])
    with pytest.raises(WireFormatError):
        packed_size(object())


def test_truncated_payload_raises():
    payload = pack_value((1, 2.5))
    with pytest.raises(WireFormatError):
        unpack_value(payload + b"\x00")


@pytest.mark.parametrize(
    "value", [12345, "ab", 2**70, Fraction(1, 3), (1, "x")], ids=repr
)
def test_every_truncation_point_raises_wire_format_error(value):
    """No struct.error leaks and no bogus trailing-bytes messages."""
    payload = pack_value(value)
    for cut in range(len(payload)):
        with pytest.raises(WireFormatError):
            unpack_value(payload[:cut])


def test_estimated_bytes_uses_packed_state_sizes():
    """State relations are charged at packed size, not repr-text length."""
    states = [
        {"device": 1, "__agg0": _acc("SUM", [0.123456789, 2.5, None]).partial()},
        {"device": 2, "__agg0": _acc("SUM", [7.25]).partial()},
    ]
    relation = Relation.from_rows(states, name="partials")
    text_estimate = sum(
        8 + len(str(row["__agg0"])) for row in states
    )
    packed_estimate = sum(
        packed_size(row["device"]) + packed_size(row["__agg0"]) for row in states
    )
    assert relation.estimated_bytes() == packed_estimate
    assert relation.estimated_bytes() < text_estimate


def test_estimated_bytes_charges_every_cell_at_packed_size():
    """All cell types — not just states — are charged at codec size."""
    rows = [
        {"n": 1, "f": 2.5, "s": "héllo", "b": True, "missing": None},
        {"n": 2**70, "f": -0.0, "s": "", "b": False, "missing": None},
    ]
    relation = Relation.from_rows(rows, name="cells")
    expected = sum(
        packed_size(value) for row in rows for value in row.values()
    )
    assert relation.estimated_bytes() == expected


def test_moment_states_shrink_versus_text():
    """The Fraction moments of STDDEV states benefit the most."""
    state = _acc("STDDEV", [0.1, 0.7, 1.3, 2.9]).partial()
    assert packed_size(state) < len(str(state))
