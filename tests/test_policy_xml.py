"""Tests for policy XML parsing/serialisation (Figure 4 format)."""

import pytest

from repro.policy import PolicyError, parse_policy_xml, policy_to_xml
from repro.policy.presets import FIGURE4_POLICY_XML, figure4_policy, open_policy, restrictive_policy


def test_parse_figure4_module_fragment():
    policy = parse_policy_xml(FIGURE4_POLICY_XML)
    module = policy.module("ActionFilter")
    assert set(module.attributes) == {"x", "y", "z", "t"}

    x_rule = module.rule_for("x")
    assert x_rule.allow
    assert x_rule.conditions == ["x>y"]

    z_rule = module.rule_for("z")
    assert z_rule.conditions == ["z<2"]
    assert z_rule.aggregation.aggregation_type == "AVG"
    assert z_rule.aggregation.group_by == ["x", "y"]
    assert z_rule.aggregation.having == "SUM(z)>100"

    assert module.rule_for("y").allow
    assert module.rule_for("t").allow


def test_figure4_policy_preset_matches_fragment():
    assert figure4_policy().module("ActionFilter").rule_for("z").aggregation is not None


def test_roundtrip_through_xml(strict_policy):
    xml = policy_to_xml(strict_policy)
    parsed = parse_policy_xml(xml)
    original_module = strict_policy.module("ActionFilter")
    parsed_module = parsed.module("ActionFilter")
    assert set(parsed_module.attributes) == set(original_module.attributes)
    assert parsed_module.relation_substitutions == original_module.relation_substitutions
    assert (
        parsed_module.stream_settings.query_interval_seconds
        == original_module.stream_settings.query_interval_seconds
    )
    z_rule = parsed_module.rule_for("z")
    assert z_rule.aggregation.having == "SUM(z) > 100"
    assert parsed_module.rule_for("person_id").allow is False


def test_full_policy_document_with_multiple_modules():
    xml = """
    <policy owner="resident">
      <module module_ID="A">
        <queryInterval>30</queryInterval>
        <attributeList>
          <attribute name="x"><allow>true</allow></attribute>
        </attributeList>
      </module>
      <module module_ID="B">
        <defaultAllow>true</defaultAllow>
        <attributeList/>
      </module>
    </policy>
    """
    policy = parse_policy_xml(xml)
    assert policy.owner == "resident"
    assert set(policy.module_ids) == {"A", "B"}
    assert policy.module("A").stream_settings.query_interval_seconds == 30
    assert policy.module("B").default_allow is True


def test_relation_substitution_and_precision_roundtrip():
    xml = """
    <module module_ID="M">
      <relationSubstitution from="ubisense" to="sensfloor"/>
      <attributeList>
        <attribute name="x"><allow>true</allow><maxPrecision>1</maxPrecision></attribute>
      </attributeList>
    </module>
    """
    policy = parse_policy_xml(xml)
    module = policy.module("M")
    assert module.relation_substitutions == {"ubisense": "sensfloor"}
    assert module.rule_for("x").max_precision == 1
    reparsed = parse_policy_xml(policy_to_xml(policy))
    assert reparsed.module("M").rule_for("x").max_precision == 1


def test_malformed_xml_raises():
    with pytest.raises(PolicyError):
        parse_policy_xml("<module module_ID='x'>")
    with pytest.raises(PolicyError):
        parse_policy_xml("<wrong/>")
    with pytest.raises(PolicyError):
        parse_policy_xml("<module><attributeList/></module>")  # missing module_ID
    with pytest.raises(PolicyError):
        parse_policy_xml(
            "<module module_ID='m'><attributeList><attribute><allow>true</allow>"
            "</attribute></attributeList></module>"
        )  # attribute without name
    with pytest.raises(PolicyError):
        parse_policy_xml(
            "<module module_ID='m'><attributeList><attribute name='z'>"
            "<aggregation></aggregation></attribute></attributeList></module>"
        )  # aggregation without type


def test_open_and_restrictive_presets():
    assert open_policy().module("ActionFilter").default_allow is True
    strict = restrictive_policy()
    assert strict.module("ActionFilter").rule_for("person_id").allow is False
