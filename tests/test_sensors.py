"""Tests for the smart-environment simulators."""

import random

import pytest

from repro.sensors import (
    AalApartment,
    Activity,
    EibGateway,
    LampSensor,
    PenSensor,
    PersonSimulator,
    PowerSocketSensor,
    ScreenSensor,
    SensFloor,
    SmartMeetingRoom,
    Thermometer,
    UbisenseTag,
    VgaSensor,
)
from repro.sensors.scenario import INTEGRATED_SCHEMA, fall_events, quantize_positions


def test_activity_typical_heights_are_ordered():
    assert Activity.FALL.typical_height < Activity.SIT.typical_height
    assert Activity.SIT.typical_height < Activity.STAND.typical_height


def test_person_trace_covers_duration_and_is_deterministic():
    person = PersonSimulator(1, rng=random.Random(1))
    trace = person.generate_trace(120.0)
    assert trace.duration == pytest.approx(120.0)
    assert trace.activity_at(0.0) is Activity.WALK
    assert trace.activity_at(500.0) is None
    # Determinism: the same seed yields the same segmentation.
    again = PersonSimulator(1, rng=random.Random(1)).generate_trace(120.0)
    assert [s.activity for s in trace.segments] == [s.activity for s in again.segments]


def test_person_positions_stay_inside_room():
    person = PersonSimulator(2, room_width=8.0, room_depth=6.0, rng=random.Random(2))
    trace = person.generate_trace(60.0)
    rows = person.positions(trace, rate_hz=10)
    assert len(rows) == 600
    assert all(0.0 <= row["x"] <= 8.0 for row in rows)
    assert all(0.0 <= row["y"] <= 6.0 for row in rows)
    assert all(row["z"] > 0 for row in rows)


def test_apartment_scenario_includes_falls_eventually():
    person = PersonSimulator(3, scenario="apartment", rng=random.Random(3))
    trace = person.generate_trace(2000.0, mean_segment=20.0)
    activities = {segment.activity for segment in trace.segments}
    assert Activity.FALL in activities


def test_invalid_scenario_rejected():
    with pytest.raises(ValueError):
        PersonSimulator(1, scenario="spaceship")


@pytest.mark.parametrize(
    "device_class,kwargs,expected_columns",
    [
        (LampSensor, {}, {"level", "powered"}),
        (ScreenSensor, {}, {"lowered"}),
        (PowerSocketSensor, {}, {"milliamperes", "active"}),
        (Thermometer, {}, {"celsius"}),
        (VgaSensor, {}, {"projector", "port", "connected"}),
        (EibGateway, {}, {"blind", "position"}),
    ],
)
def test_simple_devices_produce_schema_conform_readings(device_class, kwargs, expected_columns):
    device = device_class("dev_0", **kwargs)
    batch = device.generate(30.0, rate_hz=1.0)
    assert len(batch) > 0
    for reading in batch.readings:
        assert expected_columns <= set(reading)
        assert "t" in reading and "device_id" in reading
    relation = batch.to_relation(schema=device.schema)
    assert expected_columns <= set(relation.column_names)


def test_pen_sensor_reports_every_pen():
    batch = PenSensor("pen_0").generate(10.0, rate_hz=1.0)
    pens = {reading["pen"] for reading in batch.readings}
    assert pens == set(PenSensor.PEN_COLOURS)


def test_thermometer_values_are_plausible():
    batch = Thermometer("temp", base_temperature=21.0).generate(100.0, rate_hz=0.5)
    values = [reading["celsius"] for reading in batch.readings]
    assert all(18.0 < value < 24.0 for value in values)


def test_ubisense_tag_follows_trajectory_and_flags_invalid():
    person = PersonSimulator(1, rng=random.Random(5))
    trace = person.generate_trace(30.0)
    tag = UbisenseTag("tag_1", person=person, trace=trace, rng=random.Random(5))
    batch = tag.generate(30.0)
    assert len(batch) == 300
    invalid = [r for r in batch.readings if not r["valid"]]
    assert all(r["x"] is None for r in invalid)
    valid = [r for r in batch.readings if r["valid"]]
    assert all(r["x"] is not None for r in valid)


def test_sensfloor_only_reports_inside_area():
    person = PersonSimulator(1, rng=random.Random(6))
    trace = person.generate_trace(30.0)
    tag = UbisenseTag("tag_1", person=person, trace=trace)
    floor = SensFloor("floor", trajectories=[tag.trajectory], area=(2.0, 1.5, 6.0, 4.5))
    batch = floor.generate(30.0)
    for reading in batch.readings:
        assert reading["cell_x"] >= 0
        assert reading["cell_y"] >= 0
        assert reading["pressure"] > 0


def test_meeting_room_scenario_bundle(meeting_data):
    assert meeting_data.name == "smart_meeting_room"
    assert len(meeting_data.integrated) > 0
    assert set(meeting_data.integrated.column_names) == set(INTEGRATED_SCHEMA.names)
    expected_tables = {
        "ubisense",
        "lamp",
        "screen",
        "powersocket",
        "pensensor",
        "thermometer",
        "vgasensor",
        "eibgateway",
        "sensfloor",
    }
    assert expected_tables <= set(meeting_data.device_tables)
    assert meeting_data.total_rows > len(meeting_data.integrated)


def test_scenario_to_database_registers_d_and_stream(meeting_data):
    database = meeting_data.to_database()
    assert "d" in database and "stream" in database
    assert len(database.table("d")) == len(meeting_data.integrated)
    result = database.query("SELECT COUNT(*) AS n FROM ubisense")
    assert result.rows[0]["n"] > 0


def test_scenario_is_reproducible():
    first = SmartMeetingRoom(person_count=2, seed=9).generate(duration_seconds=10.0)
    second = SmartMeetingRoom(person_count=2, seed=9).generate(duration_seconds=10.0)
    assert first.integrated.to_dicts() == second.integrated.to_dicts()


def test_aal_apartment_and_fall_events():
    data = AalApartment(person_count=1, seed=5).generate(duration_seconds=120.0)
    assert len(data.integrated) > 0
    events = fall_events(data)
    for event in events:
        assert event["end"] > event["start"]


def test_quantize_positions_snaps_to_grid(meeting_data):
    snapped = quantize_positions(meeting_data.integrated, cell_size=0.5)
    for row in snapped.rows[:50]:
        if row["x"] is not None:
            assert (row["x"] * 2) == pytest.approx(round(row["x"] * 2))


def test_person_count_validation():
    with pytest.raises(ValueError):
        SmartMeetingRoom(person_count=0)
