"""Tests for the parallel fragment-execution runtime.

The contract under test: ``execution="parallel"`` returns relations
*identical* to the serial oracle (rows, row order and schema) on every
workload and every topology shape, repeated concurrent runs are
deterministic, and the supporting infrastructure (tree topologies, transfer
log, caches) is safe under concurrency.
"""

from __future__ import annotations

import threading

import pytest

from tests.conftest import PAPER_R_CODE, PAPER_SQL, make_sensor_relation

from repro.engine.executor import QueryExecutor
from repro.engine.table import Relation
from repro.fragment.capabilities import CapabilityLevel
from repro.fragment.topology import Node, Topology
from repro.fragment.plan import is_row_distributive
from repro.policy.presets import figure4_policy
from repro.processor.network import NetworkSimulator, Transfer, TransferLog
from repro.processor.paradise import ParadiseProcessor
from repro.runtime import (
    CostModel,
    QueryRequest,
    SessionFrontEnd,
    build_execution_dag,
)
from repro.sql.parser import parse


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def build_tree_processor(
    rows: int = 400, n_sensors: int = 8, sensors_per_appliance: int = 4, **kwargs
) -> ParadiseProcessor:
    topology = Topology.smart_home_tree(
        n_sensors=n_sensors, sensors_per_appliance=sensors_per_appliance
    )
    processor = ParadiseProcessor(figure4_policy(), topology=topology, **kwargs)
    processor.load_data(make_sensor_relation(rows))
    return processor


def assert_identical(serial, parallel):
    """Byte-identical relations: same schema names, same rows, same order."""
    assert serial.result is not None and parallel.result is not None
    assert serial.result.schema.names == parallel.result.schema.names
    assert serial.result.rows == parallel.result.rows
    assert serial.rows_leaving_apartment == parallel.rows_leaving_apartment


#: Raw workloads (run with ``apply_rewriting=False``) chosen to exercise
#: every DAG shape: distributive-only, aggregation, ordering, windows.
RAW_WORKLOADS = [
    "SELECT * FROM d WHERE z < 1.5",
    "SELECT x, y, z FROM d WHERE x > y AND z < 1.8",
    "SELECT x, AVG(z) AS za, COUNT(*) AS n FROM d GROUP BY x",
    "SELECT x, y FROM d WHERE valid ORDER BY t LIMIT 25",
    "SELECT AVG(z) OVER (PARTITION BY x ORDER BY t) FROM (SELECT x, z, t FROM d WHERE z < 1.9)",
]


# ---------------------------------------------------------------------------
# tree topologies
# ---------------------------------------------------------------------------


def test_smart_home_tree_shape():
    topology = Topology.smart_home_tree(n_sensors=8, sensors_per_appliance=4)
    assert topology.is_tree
    assert [node.name for node in topology.leaves] == [f"sensor_{i}" for i in range(8)]
    assert topology.parent_of("sensor_5").name == "appliance_1"
    assert topology.parent_of("appliance_0").name == "pc"
    assert topology.parent_of("cloud") is None
    assert [n.name for n in topology.children_of("appliance_1")] == [
        "sensor_4",
        "sensor_5",
        "sensor_6",
        "sensor_7",
    ]
    assert topology.common_ancestor(["sensor_0", "sensor_1"]).name == "appliance_0"
    assert topology.common_ancestor(["sensor_0", "sensor_7"]).name == "pc"
    assert [n.name for n in topology.path_to_root("sensor_0")] == [
        "sensor_0",
        "appliance_0",
        "pc",
        "cloud",
    ]


def test_chain_topologies_derive_parents():
    chain = Topology.default_chain()
    assert not chain.is_tree
    assert chain.parent_of("sensor").name == "appliance"
    assert chain.parent_of("pc").name == "cloud"
    assert [node.name for node in chain.leaves] == ["sensor"]


def test_tree_validation():
    with pytest.raises(ValueError):
        Topology(
            [
                Node(name="a", level=CapabilityLevel.E4_SENSOR, parent="missing"),
                Node(name="cloud", level=CapabilityLevel.E1_CLOUD),
            ]
        )
    with pytest.raises(ValueError):
        # A sensor cannot be another sensor's parent.
        Topology(
            [
                Node(name="a", level=CapabilityLevel.E4_SENSOR, parent="b"),
                Node(name="b", level=CapabilityLevel.E4_SENSOR),
                Node(name="cloud", level=CapabilityLevel.E1_CLOUD),
            ]
        )


def test_partitioned_load_preserves_order():
    topology = Topology.smart_home_tree(n_sensors=3, sensors_per_appliance=2)
    network = NetworkSimulator(topology)
    relation = make_sensor_relation(10)
    network.load_sensor_data(relation)
    assert network.is_partitioned("d")
    holders = network.partition_holders("d")
    assert holders == ["sensor_0", "sensor_1", "sensor_2"]
    recombined = []
    for holder in holders:
        recombined.extend(network.database(holder).table("d").rows)
    assert recombined == relation.rows
    assert network.base_table_rows("d") == 10
    # Chunk sizes are as even as possible: 4 + 3 + 3.
    sizes = [len(network.database(h).table("d")) for h in holders]
    assert sizes == [4, 3, 3]


# ---------------------------------------------------------------------------
# fragment marking and DAG structure
# ---------------------------------------------------------------------------


def test_is_row_distributive():
    assert is_row_distributive(parse("SELECT * FROM d WHERE z < 2"))
    assert is_row_distributive(parse("SELECT x, y + 1 FROM d WHERE x > y"))
    assert not is_row_distributive(parse("SELECT AVG(z) FROM d"))
    assert not is_row_distributive(parse("SELECT x FROM d GROUP BY x"))
    assert not is_row_distributive(parse("SELECT x FROM d ORDER BY x"))
    assert not is_row_distributive(parse("SELECT x FROM d LIMIT 5"))
    assert not is_row_distributive(parse("SELECT DISTINCT x FROM d"))
    assert not is_row_distributive(
        parse("SELECT SUM(x) OVER (ORDER BY t) FROM d")
    )
    assert not is_row_distributive(
        parse("SELECT x FROM d WHERE x IN (SELECT y FROM e)")
    )
    assert not is_row_distributive(parse("SELECT x FROM d JOIN e ON d.k = e.k"))


def test_plan_marks_partitionable_fragments():
    processor = build_tree_processor(rows=50)
    result = processor.process(PAPER_SQL, "ActionFilter", execution="serial")
    plan = result.plan
    assert plan is not None
    assert plan.fragments[0].partitionable  # sensor constant filter
    flags = [fragment.partitionable for fragment in plan.fragments]
    assert not flags[-1]  # the window stage needs the whole relation


def test_dag_partitions_and_lifts():
    processor = build_tree_processor(rows=80)
    plan = processor.fragmenter.fragment(
        processor.rewriter.rewrite(parse(PAPER_SQL), "ActionFilter").query
    )
    dag = build_execution_dag(plan, processor.topology, processor.network)
    kinds = [(task.kind, task.node) for task in dag.tasks]
    assert dag.partition_width == 8
    leaf_tasks = [node for kind, node in kinds if kind == "fragment" and node.startswith("sensor")]
    assert len(leaf_tasks) == 8
    merge_nodes = [node for kind, node in kinds if kind == "merge"]
    # Two sibling-group merges at the appliances plus the global merge.
    assert merge_nodes.count("appliance_0") >= 1
    assert merge_nodes.count("appliance_1") >= 1
    assert kinds[-1][0] == "finalize" and kinds[-1][1] == "cloud"


# ---------------------------------------------------------------------------
# differential: parallel == serial oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "topology_factory",
    [
        lambda: Topology.smart_home_tree(n_sensors=8, sensors_per_appliance=4),
        lambda: Topology.smart_home_tree(n_sensors=5, sensors_per_appliance=2),
        lambda: Topology.smart_home_tree(n_sensors=3, sensors_per_appliance=8),
        lambda: Topology.default_chain(),
        lambda: Topology.cloud_only(),
    ],
)
def test_parallel_matches_serial_fig2(topology_factory):
    processor = ParadiseProcessor(figure4_policy(), topology=topology_factory())
    processor.load_data(make_sensor_relation(300))
    serial = processor.process(PAPER_SQL, "ActionFilter", execution="serial")
    parallel = processor.process(PAPER_SQL, "ActionFilter", execution="parallel")
    assert serial.admitted and parallel.admitted
    assert_identical(serial, parallel)
    assert parallel.runtime is not None
    assert parallel.runtime.task_count >= len(serial.executions)


def test_parallel_matches_serial_usecase_r():
    processor = build_tree_processor(rows=300)
    serial = processor.process_r(PAPER_R_CODE, "ActionFilter", execution="serial")
    parallel = processor.process_r(PAPER_R_CODE, "ActionFilter", execution="parallel")
    assert_identical(serial, parallel)
    assert serial.remainder_call == parallel.remainder_call


@pytest.mark.parametrize("sql", RAW_WORKLOADS)
def test_parallel_matches_serial_raw_workloads(sql):
    processor = build_tree_processor(rows=400)
    serial = processor.process(
        sql, "ActionFilter", execution="serial", apply_rewriting=False, anonymize=False
    )
    parallel = processor.process(
        sql, "ActionFilter", execution="parallel", apply_rewriting=False, anonymize=False
    )
    assert len(serial.result) > 0  # non-degenerate differential
    assert_identical(serial, parallel)


def test_parallel_matches_serial_on_error_paths():
    """Failure parity: both paths raise the same error on bad workloads.

    The no-pushdown baseline with anonymization enabled is semantically
    ill-defined once the boundary node is powerful enough to actually
    anonymize (k-anonymity generalizes numerics to range strings, which the
    remainder's comparisons reject).  Chains never reached this because the
    boundary was a sensor below ``minimum_cpu_power``; trees do.  The
    runtime contract is parity, not repair: serial and parallel must fail
    identically.
    """
    from repro.engine.errors import ExecutionError

    processor = build_tree_processor(rows=200)
    with pytest.raises(ExecutionError) as serial_error:
        processor.process(PAPER_SQL, "ActionFilter", execution="serial", pushdown=False)
    with pytest.raises(ExecutionError) as parallel_error:
        processor.process(PAPER_SQL, "ActionFilter", execution="parallel", pushdown=False)
    assert str(serial_error.value) == str(parallel_error.value)


def test_parallel_matches_serial_no_pushdown_baseline():
    processor = build_tree_processor(rows=200)
    serial = processor.process(
        PAPER_SQL, "ActionFilter", execution="serial", pushdown=False, anonymize=False
    )
    parallel = processor.process(
        PAPER_SQL, "ActionFilter", execution="parallel", pushdown=False, anonymize=False
    )
    assert_identical(serial, parallel)
    # The baseline ships the whole raw relation across the boundary.
    assert serial.rows_leaving_apartment == 200


# ---------------------------------------------------------------------------
# determinism under concurrency
# ---------------------------------------------------------------------------


@pytest.mark.concurrency
def test_parallel_runs_are_deterministic():
    processor = build_tree_processor(rows=300)
    reference = processor.process(PAPER_SQL, "ActionFilter", execution="parallel")
    for _ in range(5):
        again = processor.process(PAPER_SQL, "ActionFilter", execution="parallel")
        assert again.result.rows == reference.result.rows
        assert again.result.schema.names == reference.result.schema.names
        names = [execution.fragment_name for execution in again.executions]
        assert names == [execution.fragment_name for execution in reference.executions]


@pytest.mark.concurrency
def test_concurrent_sessions_match_one_at_a_time():
    processor = build_tree_processor(rows=300)
    requests = [
        QueryRequest(query=sql, module_id="ActionFilter", options={"apply_rewriting": False, "anonymize": False})
        for sql in RAW_WORKLOADS
    ] * 2
    one_at_a_time = [
        processor.process(request.query, request.module_id, execution="parallel", **request.options)
        for request in requests
    ]
    with SessionFrontEnd(processor, max_concurrent=4) as front_end:
        concurrent = front_end.run_batch(requests)
    assert len(concurrent) == len(requests)
    for expected, got in zip(one_at_a_time, concurrent):
        assert got.result.rows == expected.result.rows
        assert got.result.schema.names == expected.result.schema.names
        # Per-session transfer logs are isolated from each other.
        assert got.rows_leaving_apartment == expected.rows_leaving_apartment


@pytest.mark.concurrency
def test_session_namespaces_are_recycled():
    """Long-running front-ends must not grow node catalogs per query."""
    processor = build_tree_processor(rows=100)
    with SessionFrontEnd(processor, max_concurrent=3) as front_end:
        for _ in range(4):  # several waves of reuse
            front_end.run_batch(
                [QueryRequest(PAPER_SQL, "ActionFilter") for _ in range(6)]
            )
    for node in processor.topology.nodes:
        names = processor.network.database(node.name).table_names
        namespaced = {name for name in names if "__s" in name}
        suffixes = {name.rsplit("__", 1)[1] for name in namespaced}
        assert suffixes <= {"s0", "s1", "s2"}, (node.name, sorted(namespaced))


@pytest.mark.concurrency
def test_transfer_log_thread_safety_and_order():
    log = TransferLog(node_order=["sensor", "appliance", "pc", "cloud"])

    def record_many(index: int) -> None:
        for i in range(200):
            log.record(
                Transfer(
                    source="sensor",
                    target="appliance",
                    relation_name=f"r{index}",
                    rows=1,
                    bytes=8,
                    leaves_apartment=False,
                )
            )

    threads = [threading.Thread(target=record_many, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert log.total_rows == 8 * 200
    hops = log.by_hop()
    assert hops == sorted(
        hops, key=lambda hop: (hop["source"], hop["target"], hop["relation"])
    )


@pytest.mark.concurrency
def test_by_hop_orders_bottom_up():
    topology = Topology.default_chain()
    network = NetworkSimulator(topology)
    relation = make_sensor_relation(5)
    # Record out of order; by_hop must come back bottom-up.
    network.ship(relation, "d_prime", "pc", "cloud")
    network.ship(relation, "d1", "sensor", "appliance")
    hops = network.log.by_hop()
    assert [hop["source"] for hop in hops] == ["sensor", "pc"]
    assert hops[-1]["leaves_apartment"] is True


# ---------------------------------------------------------------------------
# cost model: parallel overlap is real wall-clock time
# ---------------------------------------------------------------------------


@pytest.mark.concurrency
@pytest.mark.slow
def test_cost_model_speedup_on_tree():
    cost = CostModel(seconds_per_row=5e-5, seconds_per_kb=0.0)
    processor = build_tree_processor(rows=400, cost_model=cost)
    serial = processor.process(PAPER_SQL, "ActionFilter", execution="serial")
    parallel = processor.process(PAPER_SQL, "ActionFilter", execution="parallel")
    assert_identical(serial, parallel)
    # Serial pays the simulated sensor scans end to end; the DAG overlaps
    # them 8-wide, so even a generous tolerance holds.
    assert parallel.elapsed_seconds < serial.elapsed_seconds * 0.8
    assert parallel.runtime.overlap_factor > 1.5


# ---------------------------------------------------------------------------
# extended uncorrelated-subquery detector
# ---------------------------------------------------------------------------


@pytest.fixture
def detector_catalog():
    people = Relation.from_rows(
        [{"pid": 1, "room": 10}, {"pid": 2, "room": 20}], name="people"
    )
    rooms = Relation.from_rows(
        [{"rid": 10, "floor": 1}, {"rid": 20, "floor": 2}], name="rooms"
    )
    return {"people": people, "rooms": rooms}


def test_detector_accepts_join_from(detector_catalog):
    executor = QueryExecutor(detector_catalog)
    query = parse(
        "SELECT pid FROM people JOIN rooms ON people.room = rooms.rid WHERE floor > 1"
    )
    assert executor._subquery_is_constant(query)


def test_detector_accepts_constant_derived_table(detector_catalog):
    executor = QueryExecutor(detector_catalog)
    query = parse(
        "SELECT pid FROM (SELECT pid, room FROM people WHERE room > 5) p WHERE p.room < 100"
    )
    assert executor._subquery_is_constant(query)


def test_detector_rejects_correlated_and_unknown(detector_catalog):
    executor = QueryExecutor(detector_catalog)
    # References a column no source exposes (correlated with the outer row).
    assert not executor._subquery_is_constant(
        parse("SELECT pid FROM people WHERE room = outer_room")
    )
    # Unknown table in a join.
    assert not executor._subquery_is_constant(
        parse("SELECT pid FROM people JOIN ghosts ON people.pid = ghosts.pid")
    )
    # Derived table whose inner query is itself correlated.
    assert not executor._subquery_is_constant(
        parse("SELECT pid FROM (SELECT pid FROM people WHERE room = outer_room) p")
    )


def test_detector_powers_in_subquery_caching(detector_catalog):
    executor = QueryExecutor(detector_catalog)
    result = executor.execute(
        parse(
            "SELECT pid FROM people WHERE room IN "
            "(SELECT rid FROM rooms JOIN people ON rooms.rid = people.room WHERE floor >= 1)"
        )
    )
    assert sorted(row["pid"] for row in result) == [1, 2]
