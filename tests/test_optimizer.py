"""Statistics-driven cost-based optimization: differential grid + invariants.

The optimizer is allowed to change *how* a query runs — conjunct order,
hash-join build side, nested-loop preference, vectorized ORDER BY/DISTINCT
tails, adaptive partial-aggregation placement — but never *what* it returns.
The grid here executes a query corpus across every combination of relation
construction route (row-backed vs plain-list column-backed), execution path
(compiled vs interpreted), and optimizer toggle, demanding byte-identical
relations throughout.  Alongside it: property-style invariants for the
incremental column statistics, the KMV sketch's order independence, bool
typed columns and their wire round-trip, ``estimated_bytes`` memoization,
``hash_join`` build-side equivalence, the adaptive placement rule, and
error-identity under conjunct reordering.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.columns import BOOL, TypedColumn, typed_column_from_values
from repro.engine.database import Database
from repro.engine.errors import ExecutionError
from repro.engine.executor import QueryExecutor
from repro.engine.join import hash_join
from repro.engine.schema import ColumnDef, Schema
from repro.engine.stats import (
    ColumnStats,
    column_stats,
    optimizer_mode,
    optimizer_stats,
)
from repro.engine.table import Relation
from repro.engine.types import DataType
from repro.engine.vectorized import estimate_select_rows
from repro.engine.wire import pack_relation, state_size_feedback, unpack_relation
from repro.fragment.capabilities import CapabilityLevel
from repro.fragment.plan import QueryFragment
from repro.runtime.dag import partial_aggregation_pays
from repro.sql.parser import parse

pytestmark = pytest.mark.optimizer


# ---------------------------------------------------------------------------
# catalog builders: same logical data, two construction routes
# ---------------------------------------------------------------------------


def _sensor_rows(count: int, seed: int = 11) -> list:
    rng = random.Random(seed)
    rows = []
    for index in range(count):
        rows.append(
            {
                "id": index,
                "g": rng.randint(1, 5),
                "x": rng.choice([round(rng.uniform(0.0, 1.0), 3), None]),
                "s": rng.choice(["walk", "sit", "stand", "away", None]),
                "b": rng.choice([True, False, None]),
            }
        )
    return rows


_SCHEMA = Schema(
    [
        ColumnDef("id", DataType.INTEGER),
        ColumnDef("g", DataType.INTEGER),
        ColumnDef("x", DataType.FLOAT),
        ColumnDef("s", DataType.TEXT),
        ColumnDef("b", DataType.BOOLEAN),
    ]
)


def _build_relation(route: str, rows: list) -> Relation:
    if route == "rows":
        return Relation.from_rows(rows, name="d", schema=_SCHEMA)
    # Plain python lists as column backings: exercises every untyped
    # fallback (no TypedColumn fast paths, no buffer-speed stats).
    columns = [[row[name] for row in rows] for name in ("id", "g", "x", "s", "b")]
    return Relation.from_columns(_SCHEMA, columns, name="d")


QUERY_CORPUS = [
    # conjunct reordering (selective equality written last)
    "SELECT id, x FROM d WHERE s LIKE '%a%' AND x >= 0.25 AND g = 3",
    # OR-of-conjuncts scan
    "SELECT id FROM d WHERE g = 1 OR g = 4 OR x < 0.2",
    # vectorized ORDER BY: nulls, desc, alias, source-only order column
    "SELECT id, x FROM d ORDER BY x",
    "SELECT id, x AS v FROM d ORDER BY v DESC LIMIT 7",
    "SELECT g, s FROM d ORDER BY id LIMIT 5 OFFSET 3",
    "SELECT id, s FROM d ORDER BY s DESC, id",
    # vectorized DISTINCT, alone and with an output-name ORDER BY
    "SELECT DISTINCT g FROM d",
    "SELECT DISTINCT g, s FROM d ORDER BY g DESC, s",
    "SELECT DISTINCT b FROM d ORDER BY b",
    # arithmetic-on-column comparisons
    "SELECT id FROM d WHERE x * 2 > 1.0",
    "SELECT id FROM d WHERE id + 1 <= 40 AND g <> 2",
    # BETWEEN / IS NULL / IN alongside reorderable conjuncts
    "SELECT id FROM d WHERE x BETWEEN 0.2 AND 0.8 AND s IS NOT NULL",
    "SELECT id FROM d WHERE s IN ('walk', 'sit') AND g >= 2",
    # aggregation over the same toggles
    "SELECT g, COUNT(*) AS n, SUM(x) AS total FROM d GROUP BY g",
]


def _run(route: str, rows: list, sql: str, compiled: bool, optimizer: bool) -> Relation:
    relation = _build_relation(route, rows)
    executor = QueryExecutor({"d": relation}, use_compiled=compiled)
    with optimizer_mode(optimizer):
        return executor.execute(parse(sql))


@pytest.mark.parametrize("sql", QUERY_CORPUS)
def test_differential_grid(sql):
    """Every (route, path, optimizer) cell matches the syntactic oracle."""
    rows = _sensor_rows(120)
    oracle = _run("rows", rows, sql, compiled=False, optimizer=False)
    for route in ("rows", "columns"):
        for compiled in (False, True):
            for optimizer in (False, True):
                result = _run(route, rows, sql, compiled, optimizer)
                label = f"{route}/compiled={compiled}/optimizer={optimizer}"
                assert result.schema.names == oracle.schema.names, label
                assert result.to_dicts() == oracle.to_dicts(), label


def test_conjunct_reorder_fires_and_matches():
    """The skewed conjunct order actually reorders — and stays identical."""
    rows = _sensor_rows(200)
    sql = QUERY_CORPUS[0]
    before = optimizer_stats.conjunct_reorders
    optimized = _run("rows", rows, sql, compiled=True, optimizer=True)
    assert optimizer_stats.conjunct_reorders > before
    ablated = _run("rows", rows, sql, compiled=True, optimizer=False)
    assert optimized.to_dicts() == ablated.to_dicts()


# ---------------------------------------------------------------------------
# column statistics invariants
# ---------------------------------------------------------------------------


def _random_values(rng: random.Random, count: int) -> list:
    pool = [
        lambda: rng.randint(-50, 50),
        lambda: round(rng.uniform(-5.0, 5.0), 2),
        lambda: rng.choice(["a", "bb", "ccc"]),
        lambda: None,
    ]
    # Mostly one kind per column (realistic), with nulls mixed in; a few
    # columns are deliberately mixed-type to exercise comparability loss.
    if rng.random() < 0.25:
        return [rng.choice(pool)() for _ in range(count)]
    kind = rng.choice(pool[:3])
    return [None if rng.random() < 0.15 else kind() for _ in range(count)]


def test_incremental_stats_equal_recompute():
    """Row-by-row observation == from-scratch build, over random columns."""
    rng = random.Random(2016)
    for _ in range(40):
        values = _random_values(rng, rng.randint(0, 400))
        incremental = ColumnStats()
        for value in values:
            incremental.observe(value)
        assert incremental == column_stats(values)


def test_sketch_is_order_independent():
    """Distinct estimates ignore observation order (KMV invariant)."""
    rng = random.Random(7)
    values = [rng.randint(0, 5000) for _ in range(2000)]
    shuffled = list(values)
    rng.shuffle(shuffled)
    first, second = column_stats(values), column_stats(shuffled)
    assert first.distinct == second.distinct
    assert first.state()[-1] == second.state()[-1]  # identical sketch state
    # Above the sketch size the estimate is approximate but bounded.
    exact = len(set(values))
    assert not first.distinct_exact
    assert abs(first.distinct - exact) / exact < 0.25


def test_small_domain_distinct_is_exact():
    values = [i % 37 for i in range(1000)]
    stats = column_stats(values)
    assert stats.distinct_exact
    assert stats.distinct == 37
    assert (stats.minimum, stats.maximum) == (0, 36)


def test_relation_stats_survive_appends():
    """Stats folded on append equal stats recomputed on a fresh relation."""
    rows = _sensor_rows(80)
    live = _build_relation("rows", rows[:50])
    for name in ("g", "x", "s"):
        live.stats().column(name)  # force computation before the appends
    live.extend(rows[50:])
    fresh = _build_relation("rows", rows)
    for name in ("g", "x", "s"):
        assert live.stats().column(name) == fresh.stats().column(name)


def test_typed_and_plain_backings_agree():
    rows = _sensor_rows(150)
    typed = _build_relation("rows", rows)
    plain = _build_relation("columns", rows)
    for name in ("id", "g", "x", "s", "b"):
        assert typed.stats().column(name) == plain.stats().column(name)


def test_selectivity_fractions_are_probabilities():
    rng = random.Random(99)
    stats = column_stats([rng.randint(0, 20) for _ in range(500)])
    for op in ("<", "<=", ">", ">="):
        for value in (-5, 0, 7, 20, 33):
            fraction = stats.range_fraction(op, value)
            assert 0.0 <= fraction <= 1.0
    assert stats.eq_fraction(7) > 0.0
    assert stats.eq_fraction(999) == 0.0  # outside observed range
    assert 0.0 <= stats.between_fraction(3, 12) <= 1.0


# ---------------------------------------------------------------------------
# bool typed columns + wire round-trip
# ---------------------------------------------------------------------------


def test_bool_typed_backing():
    values = [True, False, None, True, True, None, False]
    column = typed_column_from_values(values, BOOL)
    assert isinstance(column, TypedColumn) and column.typecode == BOOL
    assert column.to_list() == values
    assert column[0] is True and column[1] is False and column[2] is None
    # Non-bool values (including 0/1 ints) must refuse the typed backing.
    assert typed_column_from_values([True, 1], BOOL) is None


def test_bool_column_wire_round_trip():
    relation = _build_relation("rows", _sensor_rows(90))
    assert isinstance(relation.column_array("b"), TypedColumn)
    decoded = unpack_relation(pack_relation(relation))
    assert decoded.schema.names == relation.schema.names
    assert decoded.to_dicts() == relation.to_dicts()
    restored = decoded.column_array("b")
    assert isinstance(restored, TypedColumn) and restored.typecode == BOOL


# ---------------------------------------------------------------------------
# estimated_bytes memoization
# ---------------------------------------------------------------------------


def test_estimated_bytes_memoized_and_invalidated():
    relation = _build_relation("rows", _sensor_rows(60))
    first = relation.estimated_bytes()
    assert first > 0
    assert relation.estimated_bytes() == first  # cached at this version
    relation.extend([{"id": 60, "g": 1, "x": 0.5, "s": "walk", "b": True}])
    assert relation.estimated_bytes() > first  # version bump invalidates


# ---------------------------------------------------------------------------
# hash_join build-side equivalence
# ---------------------------------------------------------------------------


def _join_scopes(seed: int):
    rng = random.Random(seed)
    left = [{"l.k": rng.choice([1, 2, 3, None]), "l.v": i} for i in range(17)]
    right = [{"r.k": rng.choice([1, 2, 4, None]), "r.w": i * 10} for i in range(11)]
    return left, right


@pytest.mark.parametrize("join_type", ["INNER", "LEFT", "RIGHT", "FULL"])
def test_hash_join_build_side_identity(join_type):
    """Left-build output is row-for-row identical to right-build."""
    left, right = _join_scopes(5)
    kwargs = dict(
        join_type=join_type,
        residual=lambda scope: (scope["l.v"] or 0) + (scope["r.w"] or 0) != 131,
        left_null={"l.k": None, "l.v": None},
        right_null={"r.k": None, "r.w": None},
    )
    left_key = lambda s: (s["l.k"],) if s["l.k"] is not None else None
    right_key = lambda s: (s["r.k"],) if s["r.k"] is not None else None
    via_right = hash_join(left, right, left_key, right_key, build_side="right", **kwargs)
    via_left = hash_join(left, right, left_key, right_key, build_side="left", **kwargs)
    assert via_left == via_right


def test_join_build_side_flip_through_sql():
    """Asymmetric join: the flip fires and results match the ablation."""
    rng = random.Random(3)
    small = Relation.from_rows(
        [{"k": i, "name": f"n{i}"} for i in range(30)], name="s"
    )
    big = Relation.from_rows(
        [{"k": rng.randint(0, 29), "v": i} for i in range(900)], name="t"
    )
    sql = "SELECT s.name, t.v FROM s JOIN t ON s.k = t.k WHERE t.v % 7 = 0"
    executor = QueryExecutor({"s": small, "t": big}, use_compiled=True)
    before = optimizer_stats.build_side_flips
    with optimizer_mode(True):
        optimized = executor.execute(parse(sql))
    assert optimizer_stats.build_side_flips > before
    with optimizer_mode(False):
        ablated = QueryExecutor({"s": small, "t": big}, use_compiled=True).execute(
            parse(sql)
        )
    assert optimized.to_dicts() == ablated.to_dicts()


def test_tiny_join_prefers_nested_loop():
    small_a = Relation.from_rows([{"k": i, "a": i} for i in range(5)], name="a")
    small_b = Relation.from_rows([{"k": i, "b": i * 2} for i in range(6)], name="b")
    sql = "SELECT a.a, b.b FROM a JOIN b ON a.k = b.k"
    before = optimizer_stats.nested_loop_joins
    executor = QueryExecutor({"a": small_a, "b": small_b}, use_compiled=True)
    with optimizer_mode(True):
        optimized = executor.execute(parse(sql))
    assert optimizer_stats.nested_loop_joins > before
    with optimizer_mode(False):
        ablated = QueryExecutor(
            {"a": small_a, "b": small_b}, use_compiled=True
        ).execute(parse(sql))
    assert optimized.to_dicts() == ablated.to_dicts()


# ---------------------------------------------------------------------------
# adaptive partial-aggregation placement
# ---------------------------------------------------------------------------


class _FakeNetwork:
    def __init__(self, databases):
        self._databases = databases

    def database(self, node: str) -> Database:
        return self._databases[node]


def _groupby_fragment(sql: str) -> QueryFragment:
    return QueryFragment(
        name="q1",
        query=parse(sql),
        level=CapabilityLevel.E3_APPLIANCE,
        input_name="d",
    )


def _chunk_database(rows: list) -> Database:
    database = Database(name="leaf")
    database.load_rows("d", rows)
    return database


def test_adaptive_placement_high_cardinality_falls_back():
    state_size_feedback.reset()  # predictable DEFAULT_BYTES_PER_ROW
    rows = [{"k": i, "v": float(i)} for i in range(200)]  # every key distinct
    network = _FakeNetwork({"leaf": _chunk_database(rows)})
    fragment = _groupby_fragment("SELECT k, COUNT(*) AS n FROM d GROUP BY k")
    before = optimizer_stats.adaptive_fallback
    with optimizer_mode(True):
        assert partial_aggregation_pays(network, ["leaf"], fragment, "d") is False
    assert optimizer_stats.adaptive_fallback > before


def test_adaptive_placement_low_cardinality_pays():
    state_size_feedback.reset()
    rows = [{"k": i % 3, "v": float(i)} for i in range(200)]
    network = _FakeNetwork({"leaf": _chunk_database(rows)})
    fragment = _groupby_fragment("SELECT k, COUNT(*) AS n FROM d GROUP BY k")
    before = optimizer_stats.adaptive_partial
    with optimizer_mode(True):
        assert partial_aggregation_pays(network, ["leaf"], fragment, "d") is True
    assert optimizer_stats.adaptive_partial > before


def test_legacy_ratio_rule_with_optimizer_off():
    rows_high = [{"k": i, "v": float(i)} for i in range(200)]
    rows_low = [{"k": i % 3, "v": float(i)} for i in range(200)]
    fragment = _groupby_fragment("SELECT k, COUNT(*) AS n FROM d GROUP BY k")
    with optimizer_mode(False):
        high = _FakeNetwork({"leaf": _chunk_database(rows_high)})
        assert partial_aggregation_pays(high, ["leaf"], fragment, "d") is False
        low = _FakeNetwork({"leaf": _chunk_database(rows_low)})
        assert partial_aggregation_pays(low, ["leaf"], fragment, "d") is True


# ---------------------------------------------------------------------------
# cardinality estimation sanity
# ---------------------------------------------------------------------------


def test_estimate_select_rows_sanity():
    rows = [{"k": i % 10, "v": float(i)} for i in range(1000)]
    relation = Relation.from_rows(rows, name="d")
    # Equality on a 10-value domain: ~rows/10.
    eq = estimate_select_rows(parse("SELECT v FROM d WHERE k = 3"), relation)
    assert 50 <= eq <= 200
    # GROUP BY bounded by the key's distinct count.
    grouped = estimate_select_rows(
        parse("SELECT k, COUNT(*) AS n FROM d GROUP BY k"), relation
    )
    assert 1 <= grouped <= 10
    # Flat aggregate collapses to one row; LIMIT clamps.
    assert estimate_select_rows(parse("SELECT COUNT(*) AS n FROM d"), relation) == 1
    limited = estimate_select_rows(parse("SELECT v FROM d LIMIT 5"), relation)
    assert limited == 5
    # Without a relation, input_rows drives a textbook fallback.
    fallback = estimate_select_rows(
        parse("SELECT v FROM d WHERE k = 3"), input_rows=1000
    )
    assert fallback is not None and 0 <= fallback <= 1000


# ---------------------------------------------------------------------------
# error identity under reordering
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("compiled", [False, True])
def test_reordering_preserves_error_identity(compiled):
    """A fallible conjunct raises under the optimizer iff it raises without.

    The mixed-type comparison ``v > 5`` fails on string rows; reordering must
    not let the optimizer's plan silently skip the failing comparison.
    """
    rng = random.Random(13)
    rows = [
        {"flag": i % 2, "v": "oops" if i == 97 else rng.randint(0, 100)}
        for i in range(120)
    ]
    relation = Relation.from_rows(rows, name="m")
    sql = "SELECT v FROM m WHERE flag = 1 AND v > 5"
    for optimizer in (False, True):
        executor = QueryExecutor({"m": relation}, use_compiled=compiled)
        with optimizer_mode(optimizer):
            with pytest.raises(ExecutionError):
                executor.execute(parse(sql))
