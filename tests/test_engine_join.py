"""Unit tests for the hash join operators and equi-key extraction."""

from __future__ import annotations

import pytest

from repro.engine.join import (
    UnhashableJoinKey,
    extract_equi_keys,
    hash_join,
    hash_semi_join,
)
from repro.sql import ast
from repro.sql.parser import parse_expression


def _key(name):
    def key(scope):
        value = scope.get(name)
        if value is None:
            return None
        return (value,)

    return key


LEFT = [
    {"id": 1, "k": 10},
    {"id": 2, "k": 20},
    {"id": 3, "k": None},
    {"id": 4, "k": 20},
]
RIGHT = [
    {"rid": 1, "k2": 20},
    {"rid": 2, "k2": 20},
    {"rid": 3, "k2": None},
    {"rid": 4, "k2": 30},
]


class TestHashJoin:
    def test_inner_duplicates_fan_out(self):
        result = hash_join(LEFT, RIGHT, _key("k"), _key("k2"), join_type="INNER")
        # k=20 appears twice on the left and twice on the right → 4 pairs.
        assert [(row["id"], row["rid"]) for row in result] == [
            (2, 1),
            (2, 2),
            (4, 1),
            (4, 2),
        ]

    def test_null_keys_never_match_inner(self):
        result = hash_join(LEFT, RIGHT, _key("k"), _key("k2"), join_type="INNER")
        assert all(row["id"] != 3 and row["rid"] != 3 for row in result)

    def test_left_join_pads_unmatched_and_null_keys(self):
        result = hash_join(
            LEFT,
            RIGHT,
            _key("k"),
            _key("k2"),
            join_type="LEFT",
            right_null={"rid": None, "k2": None},
        )
        ids = [(row["id"], row["rid"]) for row in result]
        assert ids == [(1, None), (2, 1), (2, 2), (3, None), (4, 1), (4, 2)]

    def test_right_join_pads_unmatched_right_rows(self):
        result = hash_join(
            LEFT,
            RIGHT,
            _key("k"),
            _key("k2"),
            join_type="RIGHT",
            left_null={"id": None, "k": None},
        )
        tail = [(row["id"], row["rid"]) for row in result[-2:]]
        assert tail == [(None, 3), (None, 4)]

    def test_full_join_pads_both_sides(self):
        result = hash_join(
            LEFT,
            RIGHT,
            _key("k"),
            _key("k2"),
            join_type="FULL",
            left_null={"id": None, "k": None},
            right_null={"rid": None, "k2": None},
        )
        pairs = [(row["id"], row["rid"]) for row in result]
        assert (1, None) in pairs and (3, None) in pairs
        assert (None, 3) in pairs and (None, 4) in pairs

    def test_using_style_keys_match_nulls(self):
        # USING key functions return the raw tuple, so None == None matches.
        left_key = lambda scope: (scope.get("k"),)
        right_key = lambda scope: (scope.get("k2"),)
        result = hash_join(LEFT, RIGHT, left_key, right_key, join_type="INNER")
        assert (3, 3) in [(row["id"], row["rid"]) for row in result]

    def test_residual_filters_pairs(self):
        result = hash_join(
            LEFT,
            RIGHT,
            _key("k"),
            _key("k2"),
            join_type="INNER",
            residual=lambda merged: merged["rid"] > 1,
        )
        assert [(row["id"], row["rid"]) for row in result] == [(2, 2), (4, 2)]

    def test_unhashable_key_raises(self):
        rows = [{"id": 1, "k": [1, 2]}]
        with pytest.raises(UnhashableJoinKey):
            hash_join(rows, rows, _key("k"), _key("k"), join_type="INNER")

    def test_merge_right_wins_collisions(self):
        left = [{"id": 1, "shared": "left"}]
        right = [{"rid": 9, "shared": "right"}]
        result = hash_join(
            left, right, lambda s: (1,), lambda s: (1,), join_type="INNER"
        )
        assert result[0]["shared"] == "right"


class TestHashSemiJoin:
    SCOPES = [{"v": 1}, {"v": 2}, {"v": None}, {"v": 3}]

    def test_membership(self):
        kept = hash_semi_join(self.SCOPES, lambda s: s["v"], lambda: {1, 3})
        assert [scope["v"] for scope in kept] == [1, 3]

    def test_anti_membership_drops_nulls_too(self):
        kept = hash_semi_join(
            self.SCOPES, lambda s: s["v"], lambda: {1, 3}, negated=True
        )
        assert [scope["v"] for scope in kept] == [2]

    def test_key_source_lazy(self):
        calls = []

        def source():
            calls.append(1)
            return {1}

        hash_semi_join([{"v": None}], lambda s: s["v"], source)
        assert calls == []  # all probes NULL → subquery never runs
        hash_semi_join(self.SCOPES, lambda s: s["v"], source)
        assert calls == [1]  # executed exactly once


class TestExtractEquiKeys:
    LEFT_KEYS = {"id", "k", "a.id", "a.k"}
    RIGHT_KEYS = {"rid", "k2", "b.rid", "b.k2"}

    def _extract(self, sql):
        return extract_equi_keys(parse_expression(sql), self.LEFT_KEYS, self.RIGHT_KEYS)

    def test_simple_equality(self):
        plan = self._extract("a.k = b.k2")
        assert plan is not None
        assert len(plan.left_exprs) == 1
        assert plan.residual is None

    def test_reversed_sides_normalised(self):
        plan = self._extract("b.k2 = a.k")
        assert plan is not None
        assert isinstance(plan.left_exprs[0], ast.Column)
        assert plan.left_exprs[0].table == "a"

    def test_conjunction_with_residual(self):
        plan = self._extract("a.k = b.k2 AND a.id < b.rid")
        assert plan is not None
        assert len(plan.left_exprs) == 1
        assert plan.residual is not None

    def test_expression_keys(self):
        plan = self._extract("k + 1 = k2 - 1")
        assert plan is not None

    def test_no_equality_returns_none(self):
        assert self._extract("a.k < b.k2") is None

    def test_same_side_equality_is_residual_only(self):
        assert self._extract("a.k = a.id") is None

    def test_constant_comparand_not_a_key(self):
        assert self._extract("a.k = 5") is None

    def test_unknown_column_bails(self):
        # "outer_col" resolves on neither side → maybe correlated → residual.
        assert self._extract("outer_col = b.k2") is None
