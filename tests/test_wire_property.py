"""Seeded-random property tests for the checkpoint relation codec.

The fault-tolerant runtime (PR 6) checkpoints partial-aggregate state
relations through :func:`repro.engine.wire.pack_state_relation`.  A restored
checkpoint must be *indistinguishable* from the relation it replaces —
merging it must produce bit-identical aggregates — so these tests fuzz the
codec with randomized state relations built from the full wire vocabulary
(bigints beyond 2**63, Shewchuk float expansions, exact Fraction moments,
NaN/inf specials, nested tuples) and assert exact round-trips, including
``repr`` equality per cell (``True`` must not come back as ``1``).

Everything is seeded with :class:`random.Random` — a failure reproduces.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest

from repro.engine.aggregates import make_accumulator
from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Relation
from repro.engine.types import DataType
from repro.engine.wire import (
    WireFormatError,
    pack_state_relation,
    pack_value,
    packed_size,
    unpack_state_relation,
    unpack_value,
)

SEEDS = [7, 23, 101, 4099]


# ---------------------------------------------------------------------------
# random wire-vocabulary values
# ---------------------------------------------------------------------------


def random_value(rng: random.Random, depth: int = 0):
    """One random value from the wire vocabulary, nesting tuples to depth 3."""
    choices = ["none", "bool", "int", "bigint", "float", "special", "str", "fraction"]
    if depth < 3:
        choices += ["tuple", "tuple"]
    kind = rng.choice(choices)
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "int":
        return rng.randint(-(2**63), 2**63 - 1)
    if kind == "bigint":
        magnitude = rng.randint(64, 400)
        return rng.choice([-1, 1]) * rng.getrandbits(magnitude)
    if kind == "float":
        return rng.uniform(-1e300, 1e300) * rng.choice([1.0, 1e-200, 1e-300])
    if kind == "special":
        return rng.choice([0.0, -0.0, math.inf, -math.inf, math.nan])
    if kind == "str":
        alphabet = "abcxyzé世\U0001f600 _"
        return "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 12)))
    if kind == "fraction":
        return Fraction(
            rng.randint(-(2**100), 2**100), rng.randint(1, 2**80)
        )
    return tuple(
        random_value(rng, depth + 1) for _ in range(rng.randint(0, 4))
    )


def same_value(a, b) -> bool:
    """Bit-exact equality: type-aware, NaN-aware, recursive."""
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(same_value(x, y) for x, y in zip(a, b))
    if type(a) is not type(b):
        return False
    if isinstance(a, float):
        if math.isnan(a) or math.isnan(b):
            return math.isnan(a) and math.isnan(b)
        return math.copysign(1.0, a) == math.copysign(1.0, b) and a == b
    return a == b


def random_state_relation(rng: random.Random) -> Relation:
    """A relation shaped like a partial-aggregation state table."""
    n_columns = rng.randint(1, 5)
    n_rows = rng.randint(0, 12)
    schema = Schema(
        [
            ColumnDef(
                name=f"c{index}",
                data_type=rng.choice(list(DataType)),
            )
            for index in range(n_columns)
        ]
    )
    columns = [
        [random_value(rng) for _ in range(n_rows)] for _ in range(n_columns)
    ]
    return Relation.from_columns(schema, columns, name=f"state_{rng.randint(0, 999)}")


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_random_values_roundtrip_and_size(seed):
    rng = random.Random(seed)
    for _ in range(300):
        value = random_value(rng)
        payload = pack_value(value)
        decoded = unpack_value(payload)
        assert same_value(value, decoded), (seed, value, decoded)
        assert repr(value) == repr(decoded)
        assert packed_size(value) == len(payload), (seed, value)


@pytest.mark.parametrize("seed", SEEDS)
def test_random_state_relations_roundtrip(seed):
    rng = random.Random(seed)
    for _ in range(40):
        relation = random_state_relation(rng)
        restored = unpack_state_relation(pack_state_relation(relation))
        assert restored.name == relation.name
        assert restored.schema.names == relation.schema.names
        assert [column.data_type for column in restored.schema.columns] == [
            column.data_type for column in relation.schema.columns
        ]
        assert len(restored) == len(relation)
        for row_a, row_b in zip(relation.rows, restored.rows):
            assert same_value(tuple(row_a), tuple(row_b)), (seed, row_a, row_b)


@pytest.mark.parametrize("seed", SEEDS)
def test_randomized_accumulator_states_survive_checkpointing(seed):
    """Driving real accumulators with random inputs, a checkpointed state
    merges bit-identically to the original state."""
    rng = random.Random(seed)
    functions = ["COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VAR_POP"]
    for _ in range(25):
        name = rng.choice(functions)
        values = []
        for _ in range(rng.randint(0, 20)):
            roll = rng.random()
            if roll < 0.15:
                values.append(None)
            elif roll < 0.35:
                values.append(rng.randint(-(2**70), 2**70))
            elif roll < 0.45:
                values.append(rng.choice([1e300, -1e300, 1e-300, 0.1, 0.2]))
            else:
                values.append(rng.uniform(-1e6, 1e6))
        if name in ("MIN", "MAX") and rng.random() < 0.5:
            values = [
                "".join(rng.choice("abcdef") for _ in range(3))
                for _ in range(len(values))
            ]
        accumulator = make_accumulator(
            name, is_star=False, distinct=False, arg_count=1
        )
        for value in values:
            accumulator.add((value,))
        state = accumulator.partial()

        # Round-trip through the relation codec, exactly as a checkpoint does.
        schema = Schema([ColumnDef(name="state", data_type=DataType.TEXT)])
        relation = Relation.from_columns(schema, [[state]], name="ckpt")
        restored_state = unpack_state_relation(pack_state_relation(relation)).rows[
            0
        ]["state"]
        assert repr(restored_state) == repr(state)

        # Merging the restored state is indistinguishable from the original.
        merged_original = make_accumulator(
            name, is_star=False, distinct=False, arg_count=1
        )
        merged_restored = make_accumulator(
            name, is_star=False, distinct=False, arg_count=1
        )
        merged_original.merge(state)
        merged_restored.merge(restored_state)

        def outcome(accumulator):
            # Extreme inputs (variance of ±2**70 values) can overflow
            # float in finalize(); the property is that the restored
            # state behaves *identically* — including raising identically.
            try:
                return repr(accumulator.finalize())
            except OverflowError as error:
                return f"OverflowError: {error}"

        assert outcome(merged_original) == outcome(merged_restored)


@pytest.mark.parametrize("seed", SEEDS)
def test_unpackable_cells_raise_wire_format_error(seed):
    """Cells outside the wire vocabulary fail loudly (callers then skip the
    checkpoint and re-execute instead of persisting something lossy)."""
    rng = random.Random(seed)
    poison = rng.choice([object(), [1, 2], {"a": 1}, {1, 2}, b"bytes"])
    schema = Schema([ColumnDef(name="state", data_type=DataType.TEXT)])
    relation = Relation.from_columns(schema, [[poison]], name="bad")
    with pytest.raises(WireFormatError):
        pack_state_relation(relation)


# ---------------------------------------------------------------------------
# typed-column relation codec (whole relations and leaf chunks)
# ---------------------------------------------------------------------------


def random_typed_relation(rng: random.Random) -> Relation:
    """A relation whose columns exercise every backing the codec knows.

    Column flavours: int64 (typed, NULL bitmap), float64 (typed, NULL
    bitmap, NaN/±inf/-0.0 included), mixed int/float/str (generic-list
    fallback), and all-NULL.  Row count includes 0 (empty relation) and
    counts straddling bitmap byte boundaries (7, 8, 9).
    """
    n_rows = rng.choice([0, 1, 7, 8, 9, rng.randint(2, 40)])
    flavours = rng.sample(
        ["int64", "float64", "mixed", "all_null"],
        k=rng.randint(1, 4),
    )
    rows = []
    for _ in range(n_rows):
        row = {}
        for index, flavour in enumerate(flavours):
            name = f"c{index}"
            if flavour == "int64":
                row[name] = (
                    None
                    if rng.random() < 0.2
                    else rng.randint(-(2**63), 2**63 - 1)
                )
            elif flavour == "float64":
                roll = rng.random()
                if roll < 0.2:
                    row[name] = None
                elif roll < 0.35:
                    row[name] = rng.choice(
                        [math.nan, math.inf, -math.inf, 0.0, -0.0]
                    )
                else:
                    row[name] = rng.uniform(-1e300, 1e300)
            elif flavour == "mixed":
                row[name] = rng.choice(
                    [rng.randint(-5, 5), rng.uniform(-1, 1), "txt", None, True]
                )
            else:
                row[name] = None
        rows.append(row)
    if not rows:
        # Empty relation with an explicit typed-capable schema.
        schema = Schema(
            [
                ColumnDef(
                    name=f"c{index}",
                    data_type=DataType.INTEGER
                    if flavour == "int64"
                    else DataType.FLOAT,
                )
                for index, flavour in enumerate(flavours)
            ]
        )
        return Relation(schema=schema, rows=[], name="chunk")
    return Relation.from_rows(rows, name="chunk")


@pytest.mark.parametrize("seed", SEEDS)
def test_random_typed_relations_roundtrip_exactly(seed):
    from repro.engine.columns import TypedColumn
    from repro.engine.wire import pack_relation, unpack_relation

    rng = random.Random(seed)
    for _ in range(40):
        relation = random_typed_relation(rng)
        restored = unpack_relation(pack_relation(relation))
        assert restored.name == relation.name
        assert restored.schema.names == relation.schema.names
        assert [column.data_type for column in restored.schema.columns] == [
            column.data_type for column in relation.schema.columns
        ]
        assert len(restored) == len(relation)
        for row_a, row_b in zip(relation.rows, restored.rows):
            assert same_value(tuple(row_a), tuple(row_b)), (seed, row_a, row_b)
        # The backing survives the round-trip: typed columns come back
        # typed (same typecode and NULL map), generic columns generic.
        for original, decoded in zip(relation.columns(), restored.columns()):
            assert isinstance(decoded, TypedColumn) == isinstance(
                original, TypedColumn
            )
            if isinstance(original, TypedColumn):
                assert decoded.typecode == original.typecode
                assert decoded.null_count == original.null_count


def test_truncated_and_malformed_payloads_fail_loudly():
    rng = random.Random(0)
    relation = random_state_relation(rng)
    payload = pack_state_relation(relation)
    with pytest.raises(WireFormatError):
        unpack_state_relation(payload[: len(payload) // 2])
    with pytest.raises(WireFormatError):
        unpack_state_relation(payload + b"\x00")
    # A valid payload of the wrong shape is rejected too.
    with pytest.raises(WireFormatError):
        unpack_state_relation(pack_value((1, 2)))
