"""Tests for query feature analysis."""

from repro.sql.analysis import analyze_query, query_summary, referenced_columns_by_table
from repro.sql.parser import parse


def test_simple_projection_features():
    features = analyze_query(parse("SELECT x, y FROM d"))
    assert features.uses("projection")
    assert not features.uses("join")
    assert features.tables == frozenset({"d"})
    assert features.output_columns == ("x", "y")


def test_star_is_not_projection():
    features = analyze_query(parse("SELECT * FROM stream"))
    assert not features.uses("projection")
    assert features.output_columns == ("*",)


def test_constant_vs_attribute_selection():
    constant = analyze_query(parse("SELECT * FROM d WHERE z < 2"))
    assert constant.uses("selection_constant")
    assert not constant.uses("selection_attribute")

    attribute = analyze_query(parse("SELECT * FROM d WHERE x > y"))
    assert attribute.uses("selection_attribute")


def test_aggregation_group_by_having():
    features = analyze_query(
        parse("SELECT x, AVG(z) FROM d GROUP BY x HAVING SUM(z) > 100")
    )
    assert features.uses("aggregation")
    assert features.uses("group_by")
    assert features.uses("having")
    assert features.aggregate_functions == frozenset({"AVG", "SUM"})


def test_window_function_detection(paper_sql):
    features = analyze_query(parse(paper_sql))
    assert features.uses("window_function")
    assert "REGR_INTERCEPT" in features.window_functions
    assert features.nesting_depth == 2
    assert features.uses("subquery")


def test_join_count():
    features = analyze_query(parse("SELECT 1 FROM a JOIN b ON a.t = b.t JOIN c ON c.t = a.t"))
    assert features.join_count == 2
    assert features.uses("join")


def test_predicate_count_sums_over_levels():
    features = analyze_query(
        parse("SELECT x FROM (SELECT x FROM d WHERE z < 2 AND x > y) WHERE x > 0")
    )
    assert features.predicate_count == 3


def test_set_operation_and_distinct_and_limit():
    features = analyze_query(parse("SELECT DISTINCT x FROM a LIMIT 5"))
    assert features.uses("distinct")
    assert features.uses("limit")
    features = analyze_query(parse("SELECT x FROM a UNION SELECT x FROM b"))
    assert features.uses("set_operation")


def test_scalar_function_feature():
    features = analyze_query(parse("SELECT ROUND(x, 1) FROM d"))
    assert features.uses("scalar_function")
    assert not features.uses("aggregation")


def test_referenced_columns_by_table():
    grouped = referenced_columns_by_table(parse("SELECT a.x, y FROM d a WHERE a.z > 1"))
    assert grouped["a"] == {"x", "z"}
    assert grouped[""] == {"y"}


def test_query_summary_shape(paper_sql):
    summary = query_summary(parse(paper_sql))
    assert summary["nesting_depth"] == 2
    assert "d" in summary["tables"]
    assert "window_function" in summary["features"]
    assert summary["aggregate_calls"] >= 1
