"""Tests for the privacy-policy model and builder."""

import pytest

from repro.policy import PolicyBuilder, PolicyError
from repro.policy.model import (
    AggregationRule,
    AttributeRule,
    ModulePolicy,
    PrivacyPolicy,
    describe_rule,
)


def test_aggregation_rule_normalises_and_validates():
    rule = AggregationRule(aggregation_type="avg", group_by=[" x ", "y", ""], having=" SUM(z)>100 ")
    assert rule.aggregation_type == "AVG"
    assert rule.group_by == ["x", "y"]
    assert rule.having == "SUM(z)>100"
    assert rule.alias_for("z") == "zAVG"
    assert rule.having_expression() is not None
    with pytest.raises(PolicyError):
        AggregationRule(aggregation_type="NOT_AN_AGG")


def test_attribute_rule_requires_name_and_parses_conditions():
    rule = AttributeRule(name="z", conditions=["z < 2", "  "])
    assert rule.conditions == ["z < 2"]
    assert len(rule.condition_expressions()) == 1
    assert not rule.requires_aggregation
    with pytest.raises(PolicyError):
        AttributeRule(name="  ")


def test_module_policy_lookup_is_case_insensitive():
    module = ModulePolicy(module_id="ActionFilter", attributes={"X": AttributeRule(name="X")})
    assert module.rule_for("x") is not None
    assert module.is_allowed("x")
    assert not module.is_allowed("unknown")
    module.default_allow = True
    assert module.is_allowed("unknown")


def test_module_policy_allowed_denied_and_conditions():
    module = ModulePolicy(module_id="m")
    module.add_rule(AttributeRule(name="x", allow=True, conditions=["x > y"]))
    module.add_rule(AttributeRule(name="secret", allow=False))
    assert module.allowed_attributes == ["x"]
    assert module.denied_attributes == ["secret"]
    assert module.all_conditions() == ["x > y"]


def test_privacy_policy_module_lookup():
    policy = PrivacyPolicy(owner="me")
    policy.add_module(ModulePolicy(module_id="ActionFilter"))
    assert policy.has_module("actionfilter")
    assert policy.module("ACTIONFILTER").module_id == "ActionFilter"
    assert policy.module_ids == ["ActionFilter"]
    with pytest.raises(PolicyError):
        policy.module("unknown")


def test_builder_builds_figure4_equivalent(paper_policy):
    built = (
        PolicyBuilder(owner="user")
        .module("ActionFilter")
        .allow("x", condition="x > y")
        .allow("y")
        .allow("z", condition="z < 2", aggregation="AVG", group_by=["x", "y"], having="SUM(z) > 100")
        .allow("t")
        .build()
    )
    module = built.module("ActionFilter")
    reference = paper_policy.module("ActionFilter")
    assert set(module.attributes) == set(reference.attributes)
    z_rule = module.rule_for("z")
    assert z_rule.aggregation.aggregation_type == "AVG"
    assert z_rule.aggregation.group_by == ["x", "y"]


def test_builder_deny_substitute_and_settings():
    policy = (
        PolicyBuilder()
        .module("M")
        .deny("person_id")
        .allow("x")
        .substitute_relation("ubisense", "sensfloor")
        .query_interval(60)
        .max_aggregation_window(300)
        .aggregation_levels(["window", "session"])
        .default_allow(False)
        .build()
    )
    module = policy.module("M")
    assert module.relation_substitutions == {"ubisense": "sensfloor"}
    assert module.stream_settings.query_interval_seconds == 60
    assert module.stream_settings.max_aggregation_window_seconds == 300
    assert module.stream_settings.allowed_aggregation_levels == ["window", "session"]


def test_builder_requires_module_before_rules():
    with pytest.raises(PolicyError):
        PolicyBuilder().allow("x")
    with pytest.raises(PolicyError):
        PolicyBuilder().build()


def test_builder_group_by_without_aggregation_rejected():
    with pytest.raises(PolicyError):
        PolicyBuilder().module("M").allow("z", group_by=["x"])


def test_describe_rule():
    rule = AttributeRule(
        name="z",
        conditions=["z < 2"],
        aggregation=AggregationRule("AVG", group_by=["x", "y"], having="SUM(z) > 100"),
    )
    text = describe_rule(rule)
    assert "z" in text and "AVG" in text and "SUM(z) > 100" in text
    assert describe_rule(AttributeRule(name="secret", allow=False)) == "secret: denied"
