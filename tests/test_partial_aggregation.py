"""Tests for distributed partial aggregation in the parallel runtime.

The contract: GROUP BY fragments whose aggregates all decompose run as
leaf-level partial aggregation with per-level combines — no global merge
of raw rows — and still return relations *byte-identical* to the serial
oracle on every workload, over every chunking of the data (NULL-heavy
chunks, empty leaves, single-sensor trees, mixed int/float columns).
"""

from __future__ import annotations

import random

import pytest

from tests.conftest import make_sensor_relation

from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Relation
from repro.engine.types import DataType
from repro.fragment.fragmenter import VerticalFragmenter
from repro.fragment.plan import is_decomposable_aggregation
from repro.fragment.topology import Topology
from repro.policy.presets import figure4_policy
from repro.processor.paradise import ParadiseProcessor
from repro.runtime import build_execution_dag, union_partials
from repro.sql.parser import parse


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def make_processor(relation: Relation, n_sensors: int = 8, **kwargs) -> ParadiseProcessor:
    topology = (
        Topology.smart_home_tree(n_sensors=n_sensors, sensors_per_appliance=4)
        if n_sensors > 1
        else Topology.default_chain()
    )
    processor = ParadiseProcessor(figure4_policy(), topology=topology, **kwargs)
    processor.load_data(relation)
    return processor


def run_both(processor: ParadiseProcessor, sql: str):
    serial = processor.process(
        sql, "ActionFilter", execution="serial", apply_rewriting=False, anonymize=False
    )
    parallel = processor.process(
        sql, "ActionFilter", execution="parallel", apply_rewriting=False, anonymize=False
    )
    return serial, parallel


def assert_identical(serial, parallel):
    assert serial.result is not None and parallel.result is not None
    assert serial.result.schema.names == parallel.result.schema.names
    assert serial.result.rows == parallel.result.rows


def mixed_relation(rows: int, null_share: float = 0.0, seed: int = 5) -> Relation:
    """Sensor-style relation with NULL-able and mixed int/float columns."""
    rng = random.Random(seed)
    data = []
    for index in range(rows):
        data.append(
            {
                "device": rng.randint(1, 3),
                "z": None if rng.random() < null_share else round(rng.uniform(0.1, 1.9), 3),
                # Mixed int/float column: SUM must follow the batch
                # semantics (exact int until the first float appears).
                "m": rng.choice([rng.randint(-5, 5), round(rng.uniform(-5, 5), 2)]),
                # Huge ints: exact only without a float detour.
                "big": rng.randint(-(2**60), 2**60),
                "t": index,
            }
        )
    return Relation.from_rows(data, name="d")


GROUP_BY_SQL = (
    "SELECT device, COUNT(*) AS n, COUNT(z) AS nz, SUM(z) AS sz, AVG(z) AS az, "
    "MIN(z) AS mn, MAX(z) AS mx, STDDEV(z) AS sd, VAR_POP(z) AS vp, "
    "SUM(m) AS sm, SUM(big) AS sb "
    "FROM d GROUP BY device HAVING COUNT(*) > 1 ORDER BY device"
)

GLOBAL_AGG_SQL = "SELECT COUNT(*) AS n, SUM(z) AS sz, AVG(z) AS az FROM d"


# ---------------------------------------------------------------------------
# decomposability analysis
# ---------------------------------------------------------------------------


def test_is_decomposable_aggregation_accepts_figure2_shapes():
    assert is_decomposable_aggregation(
        parse("SELECT x, AVG(z) AS za, COUNT(*) AS n FROM d GROUP BY x")
    )
    assert is_decomposable_aggregation(
        parse("SELECT x, SUM(z) FROM d GROUP BY x HAVING SUM(z) > 10 ORDER BY x")
    )
    assert is_decomposable_aggregation(parse("SELECT AVG(z) FROM d WHERE z < 2"))
    assert is_decomposable_aggregation(
        parse("SELECT x, STDDEV(z + 1) FROM d GROUP BY x")
    )


def test_is_decomposable_aggregation_rejects():
    # DISTINCT aggregate / MEDIAN / regression family.
    assert not is_decomposable_aggregation(
        parse("SELECT COUNT(DISTINCT x) FROM d GROUP BY y")
    )
    assert not is_decomposable_aggregation(parse("SELECT MEDIAN(z) FROM d GROUP BY x"))
    assert not is_decomposable_aggregation(
        parse("SELECT REGR_SLOPE(y, x) FROM d GROUP BY z")
    )
    # Non-key column outside an aggregate: needs a representative raw row.
    assert not is_decomposable_aggregation(
        parse("SELECT x, y, AVG(z) FROM d GROUP BY x")
    )
    assert not is_decomposable_aggregation(
        parse("SELECT x, AVG(z) FROM d GROUP BY x HAVING MAX(t) > y")
    )
    # Expression keys, DISTINCT, LIMIT, subqueries, windows, joins.
    assert not is_decomposable_aggregation(
        parse("SELECT x + 1, AVG(z) FROM d GROUP BY x + 1")
    )
    assert not is_decomposable_aggregation(
        parse("SELECT DISTINCT x, AVG(z) FROM d GROUP BY x")
    )
    assert not is_decomposable_aggregation(
        parse("SELECT x, AVG(z) FROM d GROUP BY x LIMIT 2")
    )
    assert not is_decomposable_aggregation(
        parse("SELECT x, AVG(z) FROM d WHERE x IN (SELECT y FROM e) GROUP BY x")
    )
    assert not is_decomposable_aggregation(
        parse("SELECT SUM(z) OVER (ORDER BY t) FROM d")
    )
    assert not is_decomposable_aggregation(
        parse("SELECT d.x, AVG(e.z) FROM d JOIN e ON d.k = e.k GROUP BY d.x")
    )
    # A plain projection is not an aggregation stage.
    assert not is_decomposable_aggregation(parse("SELECT x, z FROM d WHERE z < 2"))
    # Aggregates in WHERE are screened out by the gate, not at execution.
    assert not is_decomposable_aggregation(
        parse("SELECT x, AVG(z) FROM d WHERE SUM(z) > 3 GROUP BY x")
    )
    # ``__agg<N>`` key names would collide with the state columns.
    assert not is_decomposable_aggregation(
        parse("SELECT __agg0, AVG(z) FROM d GROUP BY __agg0")
    )


def test_fragmenter_marks_decomposable_fragments():
    fragmenter = VerticalFragmenter(Topology.smart_home_tree(n_sensors=4))
    plan = fragmenter.fragment(
        parse("SELECT device, AVG(z) AS az FROM d WHERE z < 2 GROUP BY device")
    )
    grouped = [fragment for fragment in plan.fragments if fragment.decomposable]
    assert len(grouped) == 1
    assert not grouped[0].partitionable


# ---------------------------------------------------------------------------
# DAG structure: no global merge for decomposable aggregation
# ---------------------------------------------------------------------------


def test_decomposable_group_by_plan_has_no_global_merge():
    processor = make_processor(mixed_relation(200), n_sensors=8)
    plan = processor.fragmenter.fragment(parse(GROUP_BY_SQL))
    dag = build_execution_dag(plan, processor.topology, processor.network)
    kinds = [task.kind for task in dag.tasks]
    assert kinds.count("merge") == 0
    assert kinds.count("partial") == 8  # one per sensor leaf
    assert kinds.count("combine") >= 2  # sibling combines at the appliances
    assert kinds.count("finalize_agg") == 1
    # The ablation baseline still builds the old merge-then-group DAG.
    baseline = build_execution_dag(
        plan, processor.topology, processor.network, partial_aggregation=False
    )
    assert [task.kind for task in baseline.tasks].count("merge") >= 1
    assert [task.kind for task in baseline.tasks].count("partial") == 0


def test_partial_states_cross_hops_instead_of_raw_rows():
    relation = mixed_relation(400)
    processor = make_processor(relation, n_sensors=8)
    serial, parallel = run_both(processor, GROUP_BY_SQL)
    assert_identical(serial, parallel)
    hops = parallel.transfers.by_hop()
    assert hops, "expected inter-node shipments"
    group_count = len({row["device"] for row in relation.rows})
    # Every hop carries at most one state row per group — never a raw chunk.
    assert max(hop["rows"] for hop in hops) <= group_count
    assert parallel.transfers.total_rows < serial.transfers.total_rows
    stats = parallel.runtime
    assert stats is not None and stats.partial_count == 8 and stats.merge_count == 0


# ---------------------------------------------------------------------------
# differential: parallel partial aggregation == serial oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sql", [GROUP_BY_SQL, GLOBAL_AGG_SQL])
@pytest.mark.parametrize("null_share", [0.0, 0.6])
def test_partial_matches_serial_null_heavy(sql, null_share):
    processor = make_processor(mixed_relation(300, null_share=null_share))
    serial, parallel = run_both(processor, sql)
    assert len(serial.result) > 0
    assert_identical(serial, parallel)


def test_partial_matches_serial_empty_leaves():
    # 3 rows over 8 sensors: five leaves hold empty chunks.
    processor = make_processor(mixed_relation(3), n_sensors=8)
    for sql in (GROUP_BY_SQL.replace("COUNT(*) > 1", "COUNT(*) > 0"), GLOBAL_AGG_SQL):
        serial, parallel = run_both(processor, sql)
        assert_identical(serial, parallel)


def test_partial_matches_serial_all_leaves_empty():
    relation = mixed_relation(10)
    empty = Relation(schema=relation.schema, rows=[], name="d")
    processor = make_processor(empty, n_sensors=8)
    serial, parallel = run_both(processor, GLOBAL_AGG_SQL)
    assert_identical(serial, parallel)
    assert parallel.result.rows == [{"n": 0, "sz": None, "az": None}]


def test_partial_matches_serial_single_sensor_tree():
    processor = make_processor(mixed_relation(150), n_sensors=1)
    serial, parallel = run_both(processor, GROUP_BY_SQL)
    assert_identical(serial, parallel)


def test_partial_matches_serial_with_filters_and_projections():
    # A distributive WHERE/projection stage precedes the aggregation: it must
    # run in place on the leaves so only states climb the tree.
    processor = make_processor(make_sensor_relation(400), n_sensors=8)
    sql = (
        "SELECT x, AVG(z) AS za, COUNT(*) AS n FROM d "
        "WHERE z < 1.8 AND x > y GROUP BY x"
    )
    serial, parallel = run_both(processor, sql)
    assert len(serial.result) > 0
    assert_identical(serial, parallel)
    assert parallel.runtime.partial_count == 8


def test_partial_disabled_knob_still_identical():
    processor = make_processor(mixed_relation(200), partial_aggregation=False)
    serial, parallel = run_both(processor, GROUP_BY_SQL)
    assert_identical(serial, parallel)
    assert parallel.runtime.partial_count == 0


def test_high_cardinality_groups_fall_back_to_global_merge():
    """Cardinality heuristic: unique-per-row keys make states pointless.

    When a leaf's observed group count approaches its chunk size, one state
    row per group would cross every hop anyway — and each state is larger
    than the raw row it summarizes — so the builder must use the
    global-merge path instead of partial aggregation.
    """
    rows = [{"device": i, "z": float(i % 7), "t": i} for i in range(320)]
    processor = make_processor(Relation.from_rows(rows, name="d"), n_sensors=8)
    sql = "SELECT device, COUNT(*) AS n, SUM(z) AS sz FROM d GROUP BY device"
    plan = processor.fragmenter.fragment(parse(sql))
    dag = build_execution_dag(plan, processor.topology, processor.network)
    kinds = [task.kind for task in dag.tasks]
    assert kinds.count("partial") == 0
    assert kinds.count("merge") >= 1
    serial, parallel = run_both(processor, sql)
    assert_identical(serial, parallel)
    assert parallel.runtime.partial_count == 0


def test_low_cardinality_groups_keep_partial_aggregation():
    """The same shape with few groups still takes the partial path."""
    rows = [{"device": i % 3, "z": float(i % 7), "t": i} for i in range(320)]
    processor = make_processor(Relation.from_rows(rows, name="d"), n_sensors=8)
    sql = "SELECT device, COUNT(*) AS n, SUM(z) AS sz FROM d GROUP BY device"
    serial, parallel = run_both(processor, sql)
    assert_identical(serial, parallel)
    assert parallel.runtime.partial_count == 8


def test_global_aggregation_ignores_cardinality_fallback():
    """No GROUP BY means one state row per leaf — always worthwhile."""
    rows = [{"device": i, "z": float(i), "t": i} for i in range(320)]
    processor = make_processor(Relation.from_rows(rows, name="d"), n_sensors=8)
    serial, parallel = run_both(processor, GLOBAL_AGG_SQL)
    assert_identical(serial, parallel)
    assert parallel.runtime.partial_count == 8


def test_non_decomposable_aggregation_falls_back_to_global_merge():
    processor = make_processor(mixed_relation(200))
    sql = "SELECT device, MEDIAN(z) AS mz, COUNT(DISTINCT t) AS nt FROM d GROUP BY device"
    serial, parallel = run_both(processor, sql)
    assert_identical(serial, parallel)
    assert parallel.runtime.partial_count == 0
    assert parallel.runtime.merge_count >= 1


@pytest.mark.concurrency
def test_partial_aggregation_runs_are_deterministic():
    processor = make_processor(mixed_relation(300, null_share=0.3))
    reference = processor.process(
        GROUP_BY_SQL, "ActionFilter", execution="parallel",
        apply_rewriting=False, anonymize=False,
    )
    for _ in range(5):
        again = processor.process(
            GROUP_BY_SQL, "ActionFilter", execution="parallel",
            apply_rewriting=False, anonymize=False,
        )
        assert again.result.rows == reference.result.rows
        assert again.result.schema.names == reference.result.schema.names


@pytest.mark.concurrency
def test_partial_aggregation_concurrent_sessions():
    from repro.runtime import QueryRequest, SessionFrontEnd

    processor = make_processor(mixed_relation(250, null_share=0.2))
    options = {"apply_rewriting": False, "anonymize": False}
    requests = [
        QueryRequest(query=sql, module_id="ActionFilter", options=options)
        for sql in (GROUP_BY_SQL, GLOBAL_AGG_SQL)
    ] * 3
    expected = [
        processor.process(r.query, r.module_id, execution="parallel", **options)
        for r in requests
    ]
    with SessionFrontEnd(processor, max_concurrent=4) as front_end:
        got = front_end.run_batch(requests)
    for want, have in zip(expected, got):
        assert have.result.rows == want.result.rows


# ---------------------------------------------------------------------------
# union_partials regressions
# ---------------------------------------------------------------------------


def test_union_partials_empty_sequence():
    merged = union_partials([], "empty")
    assert len(merged) == 0
    assert merged.schema.names == []
    assert merged.name == "empty"


def test_union_partials_all_empty_prefers_specific_types():
    typed = Schema(
        [
            ColumnDef(name="x", data_type=DataType.INTEGER),
            ColumnDef(name="c", data_type=DataType.TEXT),
        ]
    )
    weak = Schema.infer([], names=["x", "c"])  # defaults every column to FLOAT
    merged = union_partials(
        [Relation.empty(weak), Relation.empty(typed), Relation.empty(weak)], "u"
    )
    assert len(merged) == 0
    assert [column.data_type for column in merged.schema.columns] == [
        DataType.INTEGER,
        DataType.TEXT,
    ]
