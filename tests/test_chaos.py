"""Chaos differential tests for the fault-tolerant runtime (PR 6).

The contract under test extends the serial/parallel differential to injected
failures:

* every *recoverable* failure (a node crash whose data a sibling can
  re-read, a transient task error, a flaky link, a hung device caught by the
  deadline) yields a relation **byte-identical** to the healthy serial
  oracle — rows, row order and schema;
* every *unrecoverable* failure (a destroyed device whose chunk is gone)
  either aborts with :class:`~repro.runtime.faults.DataLossError` (the
  default policy) or, under ``on_data_loss="partial"``, returns a result
  whose :class:`~repro.runtime.faults.CompletenessReport` exactly
  enumerates the lost partitions;
* retries are idempotent: a re-run task recomputes its output from its
  inputs, so no state is ever double-counted;
* genuine query errors keep propagating identically in both execution
  modes (fault tolerance must not swallow them).
"""

from __future__ import annotations

import pytest

from tests.test_runtime import RAW_WORKLOADS, build_tree_processor

from repro.engine.errors import ExecutionError
from repro.fragment.topology import Topology
from repro.runtime import (
    DataLossError,
    Fault,
    FailureInjector,
    QueryRequest,
    SessionFrontEnd,
)
from repro.runtime.faults import (
    DELAY_LINK,
    DROP_LINK,
    HANG,
    KILL_NODE,
    TASK_ERROR,
    CheckpointStore,
    LinkDown,
    NodeDeath,
    RetryPolicy,
)

pytestmark = pytest.mark.chaos

ROWS = 160

#: All non-root nodes of the 8-sensor tree (the cloud cannot die).
VICTIMS = [f"sensor_{i}" for i in range(8)] + ["appliance_0", "appliance_1", "pc"]

#: One workload per DAG shape: distributive-only, partial aggregation,
#: ordering (global merge), window-over-subquery.
CHAOS_WORKLOADS = [
    RAW_WORKLOADS[0],
    RAW_WORKLOADS[2],
    RAW_WORKLOADS[3],
    RAW_WORKLOADS[4],
]


def serial_oracle(query: str):
    processor = build_tree_processor(n_sensors=8, rows=ROWS)
    return processor.process(query, "fig4", execution="serial", apply_rewriting=False)


def run_with_faults(query: str, injector: FailureInjector, **options):
    processor = build_tree_processor(n_sensors=8, rows=ROWS)
    return processor.process(
        query,
        "fig4",
        execution="parallel",
        apply_rewriting=False,
        faults=injector,
        **options,
    )


def assert_same_relation(expected, actual):
    """Byte-identity: schema names, rows, and row order all equal."""
    assert expected is not None and actual is not None
    assert expected.schema.names == actual.schema.names
    assert expected.rows == actual.rows


# ---------------------------------------------------------------------------
# the kill grid: node k at task boundary t, over every DAG shape
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("query", CHAOS_WORKLOADS)
@pytest.mark.parametrize("victim", VICTIMS)
def test_kill_any_node_stays_byte_identical(query, victim):
    """A recoverable kill of any node leaves the result byte-identical."""
    oracle = serial_oracle(query)
    injector = FailureInjector([Fault(kind=KILL_NODE, node=victim)])
    result = run_with_faults(query, injector)
    assert_same_relation(oracle.result, result.result)
    assert result.completeness is not None and result.completeness.complete
    if injector.fired:
        assert result.runtime.replans == 1
        assert result.completeness.dead_nodes == [victim]
    else:
        # The plan placed no task on the victim: its death is a no-op.
        assert result.runtime.replans == 0


@pytest.mark.parametrize("when", ["start", "finish"])
@pytest.mark.parametrize(
    "at_task,victim",
    [
        ("~partial[sensor_2]", "sensor_2"),
        ("~combine[appliance_0]", "appliance_0"),
        ("~combine[pc]", "pc"),
        ("~finalize", "appliance_0"),
    ],
)
def test_kill_at_specific_task_boundaries(at_task, victim, when):
    """Kills at every stage of the partial-aggregation protocol recover."""
    query = RAW_WORKLOADS[2]
    oracle = serial_oracle(query)
    injector = FailureInjector(
        [Fault(kind=KILL_NODE, node=victim, at_task=at_task, when=when)]
    )
    result = run_with_faults(query, injector)
    assert injector.fired, f"fault for {at_task}@{when} never matched"
    assert_same_relation(oracle.result, result.result)
    assert result.runtime.replans == 1


@pytest.mark.parametrize("n_failures", [1, 2])
def test_seeded_random_kills_recover(n_failures):
    """Seeded multi-kill runs recover and replay deterministically."""
    query = RAW_WORKLOADS[2]
    oracle = serial_oracle(query)
    for seed in (3, 11):
        first = run_with_faults(
            query,
            FailureInjector.random_node_kills(
                Topology.smart_home_tree(n_sensors=8), n_failures, seed=seed
            ),
        )
        second = run_with_faults(
            query,
            FailureInjector.random_node_kills(
                Topology.smart_home_tree(n_sensors=8), n_failures, seed=seed
            ),
        )
        assert_same_relation(oracle.result, first.result)
        assert_same_relation(oracle.result, second.result)
        # Reproducible: the same seed kills the same nodes.
        assert first.completeness.dead_nodes == second.completeness.dead_nodes


# ---------------------------------------------------------------------------
# transient faults: retries, link failures, hangs
# ---------------------------------------------------------------------------


def test_transient_error_retries_in_place():
    query = RAW_WORKLOADS[2]
    oracle = serial_oracle(query)
    injector = FailureInjector([Fault(kind=TASK_ERROR, node="sensor_1", times=2)])
    result = run_with_faults(query, injector)
    assert_same_relation(oracle.result, result.result)
    assert result.runtime.retried_attempts == 2
    assert result.runtime.replans == 0


def test_exhausted_retries_escalate_to_replan():
    query = RAW_WORKLOADS[2]
    oracle = serial_oracle(query)
    injector = FailureInjector([Fault(kind=TASK_ERROR, node="sensor_1", times=99)])
    result = run_with_faults(query, injector)
    assert_same_relation(oracle.result, result.result)
    assert result.runtime.replans == 1
    assert result.completeness.dead_nodes == ["sensor_1"]
    # Checkpoints made the re-plan replay only lost work.
    assert result.runtime.restored_tasks > 0


def test_link_drop_retries_then_succeeds():
    query = RAW_WORKLOADS[2]
    oracle = serial_oracle(query)
    injector = FailureInjector(
        [Fault(kind=DROP_LINK, node="sensor_2", target="appliance_0", times=2)]
    )
    result = run_with_faults(query, injector)
    assert_same_relation(oracle.result, result.result)
    assert result.runtime.retried_attempts == 2
    assert result.runtime.replans == 0


def test_permanently_down_link_replans():
    query = RAW_WORKLOADS[2]
    oracle = serial_oracle(query)
    injector = FailureInjector(
        [Fault(kind=DROP_LINK, node="sensor_2", target="appliance_0", times=999)]
    )
    result = run_with_faults(query, injector)
    assert_same_relation(oracle.result, result.result)
    assert result.runtime.replans >= 1


def test_link_delay_changes_nothing_but_time():
    query = RAW_WORKLOADS[0]
    oracle = serial_oracle(query)
    injector = FailureInjector(
        [Fault(kind=DELAY_LINK, node="sensor_0", delay_seconds=0.02, times=3)]
    )
    result = run_with_faults(query, injector)
    assert_same_relation(oracle.result, result.result)
    assert result.runtime.replans == 0


def test_hung_node_detected_by_deadline():
    query = RAW_WORKLOADS[2]
    oracle = serial_oracle(query)
    injector = FailureInjector(
        [Fault(kind=HANG, node="sensor_4", delay_seconds=1.2)]
    )
    result = run_with_faults(query, injector, task_timeout=0.25)
    assert_same_relation(oracle.result, result.result)
    assert result.runtime.replans == 1
    assert result.completeness.dead_nodes == ["sensor_4"]


# ---------------------------------------------------------------------------
# unrecoverable loss: policy + completeness report
# ---------------------------------------------------------------------------


def test_data_loss_fails_by_default():
    injector = FailureInjector(
        [Fault(kind=KILL_NODE, node="sensor_3", lose_data=True)]
    )
    with pytest.raises(DataLossError) as excinfo:
        run_with_faults(RAW_WORKLOADS[2], injector)
    (partition,) = excinfo.value.lost
    assert partition.node == "sensor_3"
    assert partition.table == "d"
    assert partition.rows == ROWS // 8


@pytest.mark.parametrize("query", CHAOS_WORKLOADS)
def test_data_loss_partial_policy_reports_exactly(query):
    injector = FailureInjector(
        [Fault(kind=KILL_NODE, node="sensor_3", lose_data=True)]
    )
    result = run_with_faults(query, injector, on_data_loss="partial")
    report = result.completeness
    assert report is not None and not report.complete
    assert report.leaves_lost == ["sensor_3"]
    assert report.rows_lost == ROWS // 8
    assert [p.index for p in report.lost_partitions] == [3]
    assert not report.aggregates_exact
    assert "PARTIAL" in report.summary()
    assert "sensor_3" in report.summary()
    # The degraded result covers only surviving chunks: same schema, never
    # more rows than the healthy run.
    oracle = serial_oracle(query)
    assert result.result.schema.names == oracle.result.schema.names
    assert len(result.result) <= len(oracle.result)


def test_processor_level_partial_default():
    """``allow_partial_results=True`` makes degradation the default policy."""
    topology = Topology.smart_home_tree(n_sensors=8)
    from repro.policy.presets import figure4_policy
    from repro.processor.paradise import ParadiseProcessor
    from tests.conftest import make_sensor_relation

    processor = ParadiseProcessor(
        figure4_policy(), topology=topology, allow_partial_results=True
    )
    processor.load_data(make_sensor_relation(ROWS))
    injector = FailureInjector(
        [Fault(kind=KILL_NODE, node="sensor_0", lose_data=True)]
    )
    result = processor.process(
        RAW_WORKLOADS[0],
        "fig4",
        execution="parallel",
        apply_rewriting=False,
        faults=injector,
    )
    assert not result.completeness.complete
    assert result.completeness.leaves_lost == ["sensor_0"]


# ---------------------------------------------------------------------------
# retry idempotence and checkpoint exactness
# ---------------------------------------------------------------------------


def test_retry_does_not_double_count_states():
    """A retried partial-aggregation task must not inflate counts.

    The injected error fires *after* several retries on the same leaf; if a
    retry accumulated into shared state instead of recomputing, COUNT/AVG
    would drift — byte-identity to the oracle proves it did not.
    """
    query = "SELECT x, COUNT(*) AS n, SUM(z) AS s FROM d GROUP BY x"
    oracle = serial_oracle(query)
    injector = FailureInjector(
        [Fault(kind=TASK_ERROR, node="sensor_6", at_task="~partial", times=2)]
    )
    result = run_with_faults(query, injector)
    assert_same_relation(oracle.result, result.result)
    assert result.runtime.retried_attempts == 2


def test_checkpoint_restore_is_exact():
    """A kill mid-protocol restores sibling states from checkpoints, and the
    restored run is still byte-identical (checkpoints round-trip bit for
    bit through the wire codec)."""
    query = (
        "SELECT x, AVG(z) AS za, STDDEV(z) AS zs, COUNT(*) AS n "
        "FROM d GROUP BY x"
    )
    oracle = serial_oracle(query)
    injector = FailureInjector(
        [
            Fault(
                kind=KILL_NODE,
                node="appliance_1",
                at_task="~combine[appliance_1]",
                when="start",
            )
        ]
    )
    result = run_with_faults(query, injector)
    assert injector.fired
    assert result.runtime.replans == 1
    assert_same_relation(oracle.result, result.result)
    assert result.runtime.checkpoints_saved > 0
    assert result.runtime.restored_tasks > 0
    assert result.runtime.checkpoint_bytes > 0


def test_checkpoint_store_skips_unpackable_relations():
    store = CheckpointStore()
    from repro.engine.table import Relation

    packable = Relation.from_rows(
        [{"x": 1, "s": (2, 3.5, True)}, {"x": 2, "s": (4, 0.5, False)}], name="ok"
    )
    assert store.save("sig-a", packable)
    restored = store.restore("sig-a")
    assert restored.rows == packable.rows
    assert restored.schema.names == packable.schema.names

    unpackable = Relation.from_rows([{"x": object()}], name="bad")
    assert not store.save("sig-b", unpackable)
    assert store.restore("sig-b") is None
    assert store.skipped == 1


# ---------------------------------------------------------------------------
# error parity and hygiene under failure
# ---------------------------------------------------------------------------


def test_genuine_errors_still_propagate_identically():
    """Fault tolerance must not retry or swallow real query errors."""
    bad_query = "SELECT no_such_column FROM d WHERE z < 1.0"
    serial_processor = build_tree_processor(n_sensors=8, rows=ROWS)
    parallel_processor = build_tree_processor(n_sensors=8, rows=ROWS)
    with pytest.raises(ExecutionError) as serial_error:
        serial_processor.process(
            bad_query, "fig4", execution="serial", apply_rewriting=False
        )
    with pytest.raises(ExecutionError) as parallel_error:
        parallel_processor.process(
            bad_query, "fig4", execution="parallel", apply_rewriting=False
        )
    assert str(serial_error.value) == str(parallel_error.value)


def test_failed_run_leaves_no_namespaced_intermediates():
    """Satellite: failure hygiene — a lost session leaks no intermediates."""
    processor = build_tree_processor(n_sensors=8, rows=ROWS)
    injector = FailureInjector(
        [Fault(kind=KILL_NODE, node="sensor_3", lose_data=True)]
    )
    with pytest.raises(DataLossError):
        processor.process(
            RAW_WORKLOADS[2],
            "fig4",
            execution="parallel",
            apply_rewriting=False,
            namespace="chaos1",
            faults=injector,
        )
    for node in processor.topology:
        for table in processor.network.database(node.name).table_names:
            assert not table.endswith("__chaos1"), (node.name, table)


def test_recovered_session_then_healthy_sessions_share_topology():
    """After one session loses a node, later sessions on the same processor
    keep working on the degraded topology (and stay byte-identical)."""
    query = RAW_WORKLOADS[2]
    oracle = serial_oracle(query)
    processor = build_tree_processor(n_sensors=8, rows=ROWS)
    injector = FailureInjector([Fault(kind=KILL_NODE, node="sensor_2")])
    first = processor.process(
        query, "fig4", execution="parallel", apply_rewriting=False, faults=injector
    )
    assert_same_relation(oracle.result, first.result)
    assert processor.topology.dead_nodes == ["sensor_2"]
    # A fresh healthy run on the degraded environment: sensor_2's chunk now
    # lives with a sibling, so the result is still complete and identical.
    second = processor.process(
        query, "fig4", execution="parallel", apply_rewriting=False
    )
    assert_same_relation(oracle.result, second.result)
    assert second.runtime.replans == 0


def test_session_front_end_surfaces_partial_and_errors():
    """Graceful degradation through the concurrent front-end."""
    processor = build_tree_processor(n_sensors=8, rows=ROWS)
    requests = [
        QueryRequest(query=RAW_WORKLOADS[0], module_id="fig4",
                     options={"apply_rewriting": False}),
        QueryRequest(
            query=RAW_WORKLOADS[2],
            module_id="fig4",
            options={
                "apply_rewriting": False,
                "faults": FailureInjector(
                    [Fault(kind=KILL_NODE, node="sensor_1", lose_data=True)]
                ),
                "on_data_loss": "partial",
            },
        ),
        QueryRequest(
            query=RAW_WORKLOADS[0],
            module_id="fig4",
            options={
                "apply_rewriting": False,
                "faults": FailureInjector(
                    [Fault(kind=KILL_NODE, node="sensor_4", lose_data=True)]
                ),
                "on_data_loss": "fail",
            },
        ),
    ]
    with SessionFrontEnd(processor, max_concurrent=1) as front_end:
        outcomes = front_end.run_batch(requests, return_exceptions=True)
    assert outcomes[0].completeness.complete
    assert not outcomes[1].completeness.complete
    assert outcomes[1].completeness.leaves_lost == ["sensor_1"]
    assert isinstance(outcomes[2], DataLossError)


# ---------------------------------------------------------------------------
# unit coverage for the building blocks
# ---------------------------------------------------------------------------


def test_fault_validation():
    with pytest.raises(ValueError):
        Fault(kind="explode")
    with pytest.raises(ValueError):
        Fault(kind=KILL_NODE, when="midway")
    with pytest.raises(ValueError):
        Fault(kind=KILL_NODE, times=0)


def test_retry_policy_backoff_grows():
    policy = RetryPolicy(max_attempts=4, backoff_seconds=0.01, backoff_multiplier=2.0)
    assert policy.delay(1) == pytest.approx(0.01)
    assert policy.delay(2) == pytest.approx(0.02)
    assert policy.delay(3) == pytest.approx(0.04)
    assert RetryPolicy(backoff_seconds=0.0).delay(5) == 0.0


def test_topology_liveness_and_pruning():
    topology = Topology.smart_home_tree(n_sensors=8)
    with pytest.raises(ValueError):
        topology.mark_dead("cloud")
    topology.mark_dead("appliance_0")
    assert not topology.is_alive("appliance_0")
    assert topology.dead_nodes == ["appliance_0"]
    assert topology.nearest_live_ancestor("sensor_0").name == "pc"
    pruned = topology.without(["appliance_0"])
    assert "appliance_0" not in [node.name for node in pruned.nodes]
    # Orphaned sensors re-parent to the dead appliance's parent.
    assert pruned.parent_of("sensor_0").name == "pc"
    # Surviving order (the partition/merge order) is preserved.
    survivors = [node.name for node in pruned.nodes]
    originals = [node.name for node in topology.nodes if node.name != "appliance_0"]
    assert survivors == originals
    topology.revive_all()
    assert topology.is_alive("appliance_0")


def test_injector_link_faults_raise_and_delay():
    injector = FailureInjector(
        [
            Fault(kind=DROP_LINK, node="a", target="b"),
            Fault(kind=DELAY_LINK, node="a", target="c", delay_seconds=0.5),
        ]
    )
    with pytest.raises(LinkDown):
        injector.on_ship("a", "b")
    assert injector.on_ship("a", "b") == 0.0  # consumed
    assert injector.on_ship("a", "c") == pytest.approx(0.5)
    assert injector.on_ship("x", "y") == 0.0


def test_injector_node_death_is_sticky():
    class FakeTask:
        task_id = "t001:frag[n1]"
        node = "n1"

    injector = FailureInjector([Fault(kind=KILL_NODE, node="n1")])
    with pytest.raises(NodeDeath):
        injector.before_task(FakeTask())
    # Sticky: the dead node keeps dying even though the fault is consumed.
    with pytest.raises(NodeDeath):
        injector.before_task(FakeTask())
