"""Tests for the capability classes of Table 1."""

from repro.fragment.capabilities import (
    CAPABILITY_LEVELS,
    CapabilityLevel,
    capability_for,
    capability_table,
    lowest_capable_level,
)
from repro.sql.analysis import analyze_query
from repro.sql.parser import parse


def test_levels_are_ordered_cloud_to_sensor():
    assert CapabilityLevel.E1_CLOUD < CapabilityLevel.E4_SENSOR
    assert CapabilityLevel.E1_CLOUD.is_at_least(CapabilityLevel.E4_SENSOR)
    assert not CapabilityLevel.E4_SENSOR.is_at_least(CapabilityLevel.E1_CLOUD)
    assert CapabilityLevel.E2_PC.short_name == "E2"


def test_capability_sets_are_nested():
    sensor = capability_for(CapabilityLevel.E4_SENSOR).supported_features
    appliance = capability_for(CapabilityLevel.E3_APPLIANCE).supported_features
    pc = capability_for(CapabilityLevel.E2_PC).supported_features
    cloud = capability_for(CapabilityLevel.E1_CLOUD).supported_features
    assert sensor < appliance < pc < cloud


def test_sensor_supports_only_constant_selection():
    sensor = capability_for(CapabilityLevel.E4_SENSOR)
    assert sensor.supports(analyze_query(parse("SELECT * FROM stream WHERE z < 2")))
    assert not sensor.supports(analyze_query(parse("SELECT x FROM d")))  # projection
    assert not sensor.supports(analyze_query(parse("SELECT * FROM d WHERE x > y")))
    assert sensor.missing(analyze_query(parse("SELECT * FROM d WHERE x > y"))) == [
        "selection_attribute"
    ]


def test_appliance_supports_joins_and_grouping_but_not_windows():
    appliance = capability_for(CapabilityLevel.E3_APPLIANCE)
    grouped = analyze_query(
        parse("SELECT x, AVG(z) FROM d GROUP BY x HAVING SUM(z) > 100")
    )
    assert appliance.supports(grouped)
    joined = analyze_query(parse("SELECT a.x FROM a JOIN b ON a.t = b.t"))
    assert appliance.supports(joined)
    windowed = analyze_query(parse("SELECT SUM(z) OVER (ORDER BY t) FROM d"))
    assert not appliance.supports(windowed)


def test_pc_supports_windows_and_subqueries(paper_sql):
    pc = capability_for(CapabilityLevel.E2_PC)
    assert pc.supports(analyze_query(parse(paper_sql)))
    assert pc.supports(analyze_query(parse("SELECT x FROM a UNION SELECT x FROM b")))


def test_only_cloud_supports_ml():
    assert capability_for(CapabilityLevel.E1_CLOUD).supports_ml
    assert capability_for(CapabilityLevel.E1_CLOUD).supports({"ml_algorithm", "recursion"})
    assert not capability_for(CapabilityLevel.E2_PC).supports({"ml_algorithm"})
    assert not capability_for(CapabilityLevel.E2_PC).supports_ml


def test_lowest_capable_level_pushes_down():
    assert (
        lowest_capable_level(analyze_query(parse("SELECT * FROM stream WHERE z < 2")))
        is CapabilityLevel.E4_SENSOR
    )
    assert (
        lowest_capable_level(analyze_query(parse("SELECT x, y FROM d WHERE x > y")))
        is CapabilityLevel.E3_APPLIANCE
    )
    assert (
        lowest_capable_level(
            analyze_query(parse("SELECT SUM(z) OVER (ORDER BY t) FROM d"))
        )
        is CapabilityLevel.E2_PC
    )
    assert lowest_capable_level({"ml_algorithm"}) is CapabilityLevel.E1_CLOUD


def test_lowest_capable_level_respects_available_levels():
    level = lowest_capable_level(
        analyze_query(parse("SELECT * FROM stream WHERE z < 2")),
        available=[CapabilityLevel.E1_CLOUD, CapabilityLevel.E2_PC],
    )
    assert level is CapabilityLevel.E2_PC


def test_relative_power_increases_with_level():
    powers = [capability_for(level).relative_power for level in sorted(CAPABILITY_LEVELS, key=int)]
    assert powers == sorted(powers, reverse=True)


def test_capability_table_has_four_rows_matching_paper():
    rows = capability_table()
    assert [row["level"] for row in rows] == ["E1", "E2", "E3", "E4"]
    assert rows[0]["system"] == "cloud"
    assert "sensor" in rows[3]["system"]
    assert "1 for 1 person" in rows[1]["nodes"]
