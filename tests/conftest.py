"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Relation
from repro.engine.types import DataType
from repro.policy.presets import figure4_policy, restrictive_policy
from repro.sensors.scenario import INTEGRATED_SCHEMA, SmartMeetingRoom, quantize_positions

#: The SQL query embedded in the R code of Section 4.2.
PAPER_SQL = """
SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t)
FROM (SELECT x, y, z, t FROM d)
"""

#: The R analysis call of Section 4.2.
PAPER_R_CODE = """
filterByClass(sqldf(
  SELECT regr_intercept(y, x)
  OVER (PARTITION BY z ORDER BY t)
  FROM (SELECT x, y, z, t
        FROM d)
), action='walk', do.plot=F)
"""


@pytest.fixture
def paper_sql() -> str:
    return PAPER_SQL


@pytest.fixture
def paper_r_code() -> str:
    return PAPER_R_CODE


@pytest.fixture
def paper_policy():
    return figure4_policy()


@pytest.fixture
def strict_policy():
    return restrictive_policy()


@pytest.fixture
def sensor_schema() -> Schema:
    return INTEGRATED_SCHEMA


def make_sensor_relation(rows: int = 200, seed: int = 0, grid: float = 0.5) -> Relation:
    """Deterministic synthetic sensor relation matching the integrated schema."""
    rng = random.Random(seed)
    data = []
    for index in range(rows):
        x = round(round(rng.uniform(0, 8) / grid) * grid, 3)
        y = round(round(rng.uniform(0, 6) / grid) * grid, 3)
        data.append(
            {
                "person_id": rng.randint(1, 4),
                "x": x,
                "y": y,
                "z": round(rng.uniform(0.1, 1.9), 3),
                "t": round(index * 0.1, 3),
                "valid": rng.random() > 0.05,
                "activity": rng.choice(["walk", "sit", "stand"]),
            }
        )
    return Relation(schema=INTEGRATED_SCHEMA, rows=data, name="d")


@pytest.fixture
def sensor_relation() -> Relation:
    return make_sensor_relation()


@pytest.fixture
def small_relation() -> Relation:
    schema = Schema(
        [
            ColumnDef(name="a", data_type=DataType.INTEGER),
            ColumnDef(name="b", data_type=DataType.FLOAT),
            ColumnDef(name="c", data_type=DataType.TEXT),
        ]
    )
    rows = [
        {"a": 1, "b": 1.5, "c": "red"},
        {"a": 2, "b": 2.5, "c": "green"},
        {"a": 3, "b": 3.5, "c": "blue"},
        {"a": 4, "b": 4.5, "c": "red"},
    ]
    return Relation(schema=schema, rows=rows, name="small")


@pytest.fixture(scope="session")
def meeting_data():
    """A small but complete Smart Meeting Room simulation (session scoped)."""
    data = SmartMeetingRoom(person_count=3, seed=42).generate(duration_seconds=30.0)
    data.integrated = quantize_positions(data.integrated, cell_size=0.5)
    return data
