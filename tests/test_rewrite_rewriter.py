"""Tests for the policy-driven query rewriter (the paper's core transformation)."""

import pytest

from repro.policy import PolicyBuilder
from repro.rewrite import QueryRewriter, RewriteError
from repro.sensors.scenario import INTEGRATED_SCHEMA
from repro.sql import ast, parse, render
from repro.sql.visitor import collect_column_names, collect_tables


def test_paper_use_case_rewrite(paper_policy, paper_sql):
    """The nested query of Section 4.2 must rewrite exactly as printed."""
    result = QueryRewriter(paper_policy).rewrite_sql(paper_sql, "ActionFilter")
    sql = result.sql
    assert "WHERE x > y AND z < 2" in sql
    assert "GROUP BY x, y" in sql
    assert "HAVING SUM(z) > 100" in sql
    assert "AVG(z) AS zAVG" in sql
    assert "PARTITION BY zAVG" in sql
    assert result.compliant
    assert result.renamed_attributes == {"z": "zAVG"}


def test_rewrite_report_actions(paper_policy, paper_sql):
    result = QueryRewriter(paper_policy).rewrite_sql(paper_sql, "ActionFilter")
    kinds = {action.kind for action in result.report.actions}
    assert {"inject_condition", "inject_having", "enforce_aggregation", "rename_reference"} <= kinds
    assert "x > y" in result.report.injected_conditions
    assert "z < 2" in result.report.injected_conditions
    assert result.report.original_sql != result.report.rewritten_sql
    assert "Rewrite report" in result.report.summary()


def test_rewrite_is_idempotent(paper_policy, paper_sql):
    """Rewriting an already rewritten query must not change it further."""
    rewriter = QueryRewriter(paper_policy)
    once = rewriter.rewrite_sql(paper_sql, "ActionFilter")
    twice = rewriter.rewrite(once.query, "ActionFilter")
    assert twice.sql == once.sql


def test_denied_attribute_is_removed_from_projection():
    policy = PolicyBuilder().module("M").deny("person_id").allow("x").allow("t").build()
    result = QueryRewriter(policy).rewrite_sql("SELECT person_id, x, t FROM d", "M")
    names = collect_column_names(result.query)
    assert "person_id" not in names
    assert result.report.removed_attributes
    assert result.compliant


def test_predicate_over_denied_attribute_is_dropped():
    policy = PolicyBuilder().module("M").deny("person_id").allow("x").build()
    result = QueryRewriter(policy).rewrite_sql(
        "SELECT x FROM d WHERE person_id = 3 AND x > 0", "M"
    )
    assert "person_id" not in render(result.query)
    assert "x > 0" in render(result.query)
    assert result.report.actions_of("remove_predicate")


def test_query_with_only_denied_attributes_is_rejected():
    policy = PolicyBuilder().module("M").deny("secret").build()
    result = QueryRewriter(policy).rewrite_sql("SELECT secret FROM d", "M")
    assert not result.compliant
    assert result.report.rejection_reason


def test_relation_substitution():
    policy = (
        PolicyBuilder()
        .module("M")
        .allow("cell_x")
        .substitute_relation("ubisense", "sensfloor")
        .build()
    )
    result = QueryRewriter(policy).rewrite_sql("SELECT cell_x FROM ubisense", "M")
    tables = {t.name for t in collect_tables(result.query)}
    assert tables == {"sensfloor"}
    assert result.report.actions_of("substitute_relation")


def test_conditions_only_injected_for_referenced_attributes():
    policy = (
        PolicyBuilder()
        .module("M")
        .allow("x", condition="x > 0")
        .allow("y", condition="y > 0")
        .build()
    )
    result = QueryRewriter(policy).rewrite_sql("SELECT x FROM d", "M")
    sql = render(result.query)
    assert "x > 0" in sql
    assert "y > 0" not in sql


def test_condition_not_duplicated_when_already_present():
    policy = PolicyBuilder().module("M").allow("z", condition="z < 2").build()
    result = QueryRewriter(policy).rewrite_sql("SELECT z FROM d WHERE z < 2", "M")
    assert render(result.query).count("z < 2") == 1


def test_existing_where_is_kept_and_combined_conjunctively(paper_policy):
    result = QueryRewriter(paper_policy).rewrite_sql(
        "SELECT x, y, t FROM d WHERE t > 10", "ActionFilter"
    )
    sql = render(result.query)
    assert "t > 10" in sql
    assert "x > y" in sql
    assert " AND " in sql


def test_aggregation_enforcement_on_flat_query(paper_policy):
    result = QueryRewriter(paper_policy).rewrite_sql("SELECT x, y, z, t FROM d", "ActionFilter")
    sql = render(result.query)
    assert "AVG(z) AS zAVG" in sql
    assert "GROUP BY x, y" in sql
    assert "HAVING SUM(z) > 100" in sql


def test_aggregation_not_applied_when_attribute_not_projected(paper_policy):
    result = QueryRewriter(paper_policy).rewrite_sql("SELECT x, y, t FROM d", "ActionFilter")
    sql = render(result.query)
    assert "AVG" not in sql
    assert "GROUP BY" not in sql


def test_star_expansion_with_schema(strict_policy):
    rewriter = QueryRewriter(strict_policy, schema=INTEGRATED_SCHEMA)
    result = rewriter.rewrite_sql("SELECT * FROM d", "ActionFilter")
    sql = render(result.query)
    assert "person_id" not in sql
    assert "activity" not in sql
    assert "AVG(z) AS zAVG" in sql
    assert result.compliant


def test_star_without_schema_is_left_to_postprocessing(paper_policy):
    result = QueryRewriter(paper_policy).rewrite_sql("SELECT * FROM stream", "ActionFilter")
    assert result.query.is_select_star
    assert result.compliant


def test_attributes_without_rule_are_stripped_when_schema_known(strict_policy):
    rewriter = QueryRewriter(strict_policy, schema=INTEGRATED_SCHEMA)
    result = rewriter.rewrite_sql("SELECT person_id, x, y, t FROM d", "ActionFilter")
    names = collect_column_names(result.query)
    assert "person_id" not in names


def test_unknown_module_raises(paper_policy):
    with pytest.raises(RewriteError):
        QueryRewriter(paper_policy).rewrite_sql("SELECT x FROM d", "NoSuchModule")


def test_outer_references_to_removed_attribute_are_pruned():
    policy = PolicyBuilder().module("M").deny("z").allow("x").allow("t").build()
    result = QueryRewriter(policy).rewrite_sql(
        "SELECT AVG(z), x FROM (SELECT x, z, t FROM d) GROUP BY x", "M"
    )
    sql = render(result.query)
    assert "z" not in collect_column_names(result.query)
    assert "AVG" not in sql


def test_rewrite_preserves_original_query(paper_policy, paper_sql):
    original = parse(paper_sql)
    before = render(original)
    QueryRewriter(paper_policy).rewrite(original, "ActionFilter")
    assert render(original) == before


def test_rewritten_query_never_references_denied_attributes(strict_policy):
    rewriter = QueryRewriter(strict_policy, schema=INTEGRATED_SCHEMA)
    queries = [
        "SELECT person_id, activity, x, y, z, t FROM d",
        "SELECT * FROM d WHERE person_id = 1",
        "SELECT activity FROM (SELECT activity, x FROM d) WHERE x > 1",
    ]
    denied = {"person_id", "activity"}
    for sql in queries:
        result = rewriter.rewrite_sql(sql, "ActionFilter")
        if result.compliant:
            assert not (set(collect_column_names(result.query)) & denied)
