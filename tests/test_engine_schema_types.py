"""Tests for column types and schemas."""

from datetime import datetime

import pytest

from repro.engine.errors import SchemaError
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import DataType, coerce, common_type, infer_type, parse_type_name


def test_infer_type():
    assert infer_type(True) is DataType.BOOLEAN
    assert infer_type(3) is DataType.INTEGER
    assert infer_type(3.5) is DataType.FLOAT
    assert infer_type("hi") is DataType.TEXT
    assert infer_type(datetime(2016, 3, 15)) is DataType.TIMESTAMP


def test_common_type():
    assert common_type(DataType.INTEGER, DataType.FLOAT) is DataType.FLOAT
    assert common_type(DataType.INTEGER, DataType.INTEGER) is DataType.INTEGER
    assert common_type(DataType.TEXT, DataType.FLOAT) is DataType.TEXT


def test_coerce():
    assert coerce(None, DataType.INTEGER) is None
    assert coerce("3", DataType.INTEGER) == 3
    assert coerce(1, DataType.BOOLEAN) is True
    assert coerce("false", DataType.BOOLEAN) is False
    assert coerce(2.0, DataType.TEXT) == "2.0"
    assert coerce("2016-03-15T10:00:00", DataType.TIMESTAMP) == datetime(2016, 3, 15, 10)


def test_parse_type_name():
    assert parse_type_name("INT") is DataType.INTEGER
    assert parse_type_name("double") is DataType.FLOAT
    assert parse_type_name("BOOLEAN") is DataType.BOOLEAN
    assert parse_type_name("varchar") is DataType.TEXT
    assert parse_type_name("timestamp") is DataType.TIMESTAMP


def test_schema_duplicate_column_rejected():
    with pytest.raises(SchemaError):
        Schema([ColumnDef(name="x"), ColumnDef(name="X")])


def test_schema_lookup_case_insensitive():
    schema = Schema([ColumnDef(name="zAVG", data_type=DataType.FLOAT)])
    assert "zavg" in schema
    assert schema.column("ZAVG").name == "zAVG"
    assert schema.index_of("zavg") == 0


def test_schema_unknown_column_raises():
    schema = Schema.from_names(["a", "b"])
    with pytest.raises(SchemaError):
        schema.column("c")


def test_schema_infer_from_rows():
    rows = [{"a": None, "b": "x"}, {"a": 2, "b": "y"}]
    schema = Schema.infer(rows)
    assert schema.column("a").data_type is DataType.INTEGER
    assert schema.column("b").data_type is DataType.TEXT


def test_schema_project_without_rename_merge():
    schema = Schema.from_names(["a", "b", "c"])
    assert schema.project(["c", "a"]).names == ["c", "a"]
    assert schema.without(["b"]).names == ["a", "c"]
    renamed = schema.rename({"a": "alpha"})
    assert renamed.names == ["alpha", "b", "c"]
    merged = schema.project(["a"]).merge(Schema.from_names(["d"]))
    assert merged.names == ["a", "d"]


def test_schema_classification():
    schema = Schema(
        [
            ColumnDef(name="person_id", identifying=True),
            ColumnDef(name="x", quasi_identifier=True),
            ColumnDef(name="z", sensitive=True),
            ColumnDef(name="t"),
        ]
    )
    classes = schema.classification()
    assert classes["identifying"] == ["person_id"]
    assert classes["quasi_identifiers"] == ["x"]
    assert classes["sensitive"] == ["z"]
    assert classes["other"] == ["t"]
