"""Tests for scalar functions."""

import pytest

from repro.engine.errors import ExecutionError
from repro.engine.functions import call_scalar_function, is_scalar_function


def test_math_functions():
    assert call_scalar_function("ABS", [-2]) == 2
    assert call_scalar_function("CEIL", [1.2]) == 2
    assert call_scalar_function("FLOOR", [1.8]) == 1
    assert call_scalar_function("SQRT", [9]) == 3
    assert call_scalar_function("POWER", [2, 10]) == 1024
    assert call_scalar_function("MOD", [7, 3]) == 1
    assert call_scalar_function("SIGN", [-5]) == -1


def test_round_with_and_without_digits():
    assert call_scalar_function("ROUND", [1.2345, 2]) == 1.23
    assert call_scalar_function("ROUND", [1.6]) == 2


def test_string_functions():
    assert call_scalar_function("UPPER", ["walk"]) == "WALK"
    assert call_scalar_function("LOWER", ["WALK"]) == "walk"
    assert call_scalar_function("LENGTH", ["abc"]) == 3
    assert call_scalar_function("TRIM", ["  x "]) == "x"
    assert call_scalar_function("SUBSTR", ["sensor", 1, 3]) == "sen"
    assert call_scalar_function("CONCAT", ["a", None, "b"]) == "ab"


def test_null_propagation():
    assert call_scalar_function("ABS", [None]) is None
    assert call_scalar_function("UPPER", [None]) is None


def test_coalesce_and_nullif():
    assert call_scalar_function("COALESCE", [None, None, 3]) == 3
    assert call_scalar_function("COALESCE", [None]) is None
    assert call_scalar_function("NULLIF", [1, 1]) is None
    assert call_scalar_function("NULLIF", [1, 2]) == 1


def test_greatest_least_ignore_nulls():
    assert call_scalar_function("GREATEST", [1, None, 3]) == 3
    assert call_scalar_function("LEAST", [1, None, 3]) == 1


def test_width_bucket():
    assert call_scalar_function("WIDTH_BUCKET", [0.5, 0, 1, 10]) == 6
    assert call_scalar_function("WIDTH_BUCKET", [-1, 0, 1, 10]) == 0
    assert call_scalar_function("WIDTH_BUCKET", [2, 0, 1, 10]) == 11


def test_unknown_function_raises():
    with pytest.raises(ExecutionError):
        call_scalar_function("NO_SUCH_FUNCTION", [1])
    assert not is_scalar_function("NO_SUCH_FUNCTION")
    assert is_scalar_function("round")
