"""Differential tests: the compiled path against the interpreted oracle.

Every query of the corpus is executed twice over the same catalog — once with
``use_compiled=True`` (closures, hash joins, single-pass GROUP BY) and once
with ``use_compiled=False`` (the original per-row tree walk).  The resulting
relations must be identical: same column names in the same order, same rows
in the same order, same values (bit-for-bit for floats, since both paths
perform the same arithmetic in the same order).

This harness is what lets the compiled path be the default while the paper's
auditability argument still rests on the simple interpreted semantics.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.executor import QueryExecutor, execution_mode, default_execution_mode
from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Relation
from repro.engine.types import DataType
from repro.sql.parser import parse

# ---------------------------------------------------------------------------
# catalog
# ---------------------------------------------------------------------------


def _sensor_rows(count: int, seed: int) -> list:
    rng = random.Random(seed)
    rows = []
    for index in range(count):
        rows.append(
            {
                "id": index,
                "person_id": rng.randint(1, 5),
                "room_id": rng.choice([1, 2, 3, None]),
                "x": round(rng.uniform(0, 8), 2),
                "y": round(rng.uniform(0, 6), 2),
                "z": rng.choice([round(rng.uniform(0.1, 1.9), 1), None]),
                "t": round(index * 0.5, 1),
                "activity": rng.choice(["walk", "sit", "stand", None]),
            }
        )
    return rows


@pytest.fixture(scope="module")
def catalog():
    readings = Relation.from_rows(_sensor_rows(60, seed=7), name="readings")
    rooms = Relation.from_rows(
        [
            {"room_id": 1, "label": "kitchen", "floor": 0},
            {"room_id": 2, "label": "living", "floor": 0},
            {"room_id": 2, "label": "living_annex", "floor": 0},
            {"room_id": 3, "label": "bath", "floor": 1},
            {"room_id": None, "label": "unknown", "floor": None},
            {"room_id": 5, "label": "attic", "floor": 2},
        ],
        name="rooms",
    )
    people = Relation.from_rows(
        [
            {"person_id": pid, "name": name, "age": age}
            for pid, name, age in [
                (1, "ada", 34),
                (2, "grace", 41),
                (3, "alan", None),
                (4, "edsger", 72),
                (6, "barbara", 55),
            ]
        ],
        name="people",
    )
    empty = Relation(
        schema=Schema(
            [
                ColumnDef(name="a", data_type=DataType.INTEGER),
                ColumnDef(name="b", data_type=DataType.TEXT),
            ]
        ),
        rows=[],
        name="nothing",
    )
    return {"readings": readings, "rooms": rooms, "people": people, "nothing": empty}


#: The differential corpus.  Each entry is executed through both paths.
CORPUS = [
    # projection / expressions / NULL semantics
    "SELECT * FROM readings",
    "SELECT id, x + y AS s, x * -y AS p, x / z AS ratio, x % 2 AS m FROM readings",
    "SELECT id, z IS NULL AS missing, z IS NOT NULL AS present FROM readings",
    "SELECT id, NOT (x > 4) AS inv, -x AS neg FROM readings",
    "SELECT id, COALESCE(z, 0.0) AS z0, NULLIF(person_id, 3) AS p FROM readings",
    "SELECT id, CASE WHEN x > 6 THEN 'far' WHEN x > 3 THEN 'mid' ELSE 'near' END AS bucket FROM readings",
    "SELECT id, activity || '-suffix' AS tagged FROM readings",
    "SELECT id, CAST(x AS INTEGER) AS xi, CAST(person_id AS TEXT) AS pt FROM readings",
    "SELECT ROUND(x, 1) AS r, ABS(y - 3) AS a, GREATEST(x, y, z) AS g FROM readings",
    "SELECT UPPER(activity) AS u, LENGTH(activity) AS l, SUBSTR(activity, 1, 2) AS s2 FROM readings",
    # WHERE with three-valued logic, LIKE, IN, BETWEEN
    "SELECT id FROM readings WHERE z < 1.2",
    "SELECT id FROM readings WHERE z < 1.2 OR activity = 'walk'",
    "SELECT id FROM readings WHERE NOT (z < 1.2)",
    "SELECT id FROM readings WHERE activity LIKE 'w%'",
    "SELECT id FROM readings WHERE activity NOT LIKE '%a%'",
    "SELECT id FROM readings WHERE person_id IN (1, 3, 5)",
    "SELECT id FROM readings WHERE person_id NOT IN (1, 3, 5)",
    "SELECT id FROM readings WHERE x BETWEEN 2 AND 5 AND z IS NOT NULL",
    "SELECT id FROM readings WHERE t NOT BETWEEN 5 AND 20",
    # DISTINCT / ORDER BY / LIMIT / OFFSET
    "SELECT DISTINCT person_id, activity FROM readings",
    "SELECT id, x FROM readings ORDER BY x DESC, id LIMIT 7",
    "SELECT id, z FROM readings ORDER BY z, id LIMIT 10 OFFSET 3",
    "SELECT person_id, x FROM readings ORDER BY person_id * -1, x",
    # joins
    "SELECT r.id, rooms.label FROM readings AS r INNER JOIN rooms ON r.room_id = rooms.room_id",
    "SELECT r.id, rooms.label FROM readings AS r LEFT JOIN rooms ON r.room_id = rooms.room_id",
    "SELECT r.id, rooms.label, rooms.floor FROM readings AS r RIGHT JOIN rooms ON r.room_id = rooms.room_id",
    "SELECT r.id, rooms.label FROM readings AS r FULL JOIN rooms ON r.room_id = rooms.room_id",
    "SELECT p.name, r.id FROM people AS p JOIN readings AS r ON p.person_id = r.person_id AND r.x > 4",
    "SELECT a.id AS left_id, b.id AS right_id FROM readings AS a JOIN readings AS b "
    "ON a.person_id = b.person_id AND a.id < b.id WHERE a.id < 6",
    "SELECT readings.id, rooms.label FROM readings JOIN rooms USING (room_id) WHERE readings.id < 20",
    "SELECT p.name, n.a FROM people AS p LEFT JOIN nothing AS n ON p.person_id = n.a",
    "SELECT n.a, p.name FROM nothing AS n RIGHT JOIN people AS p ON n.a = p.person_id",
    "SELECT p.name, r.label FROM people AS p CROSS JOIN rooms AS r WHERE p.person_id < 3",
    "SELECT r.id, p.name FROM readings AS r JOIN people AS p ON r.person_id + 1 = p.person_id + 1 "
    "WHERE r.id < 10",
    # non-equi join condition (nested-loop fallback)
    "SELECT r.id, p.name FROM readings AS r JOIN people AS p ON r.person_id < p.person_id WHERE r.id < 5",
    # GROUP BY / HAVING / aggregates
    "SELECT person_id, COUNT(*) AS n, SUM(x) AS sx, AVG(y) AS ay FROM readings GROUP BY person_id",
    "SELECT person_id, MIN(z) AS mn, MAX(z) AS mx, COUNT(z) AS nz FROM readings GROUP BY person_id",
    "SELECT activity, COUNT(*) AS n FROM readings GROUP BY activity HAVING COUNT(*) > 5",
    "SELECT person_id, COUNT(DISTINCT activity) AS kinds FROM readings GROUP BY person_id",
    "SELECT person_id, MEDIAN(x) AS mx, STDDEV(y) AS sy FROM readings GROUP BY person_id HAVING COUNT(*) >= 3",
    "SELECT COUNT(*) AS n, SUM(z) AS sz FROM readings",
    "SELECT COUNT(*) AS n FROM nothing",
    "SELECT person_id, room_id, AVG(x) AS ax FROM readings GROUP BY person_id, room_id "
    "ORDER BY person_id, room_id",
    "SELECT person_id, REGR_INTERCEPT(y, x) AS ri, CORR(y, x) AS c FROM readings GROUP BY person_id",
    "SELECT activity, SUM(x) AS sx FROM readings WHERE z IS NOT NULL GROUP BY activity "
    "HAVING SUM(x) > 10 ORDER BY sx DESC",
    # window functions
    "SELECT id, AVG(x) OVER (PARTITION BY person_id) AS ax FROM readings",
    "SELECT id, SUM(x) OVER (PARTITION BY person_id ORDER BY t) AS running FROM readings",
    "SELECT id, REGR_INTERCEPT(y, x) OVER (PARTITION BY person_id ORDER BY t) AS ri FROM readings",
    "SELECT id, ROW_NUMBER() OVER (PARTITION BY activity ORDER BY t) AS rn FROM readings",
    "SELECT id, RANK() OVER (ORDER BY person_id) AS rk, DENSE_RANK() OVER (ORDER BY person_id) AS drk "
    "FROM readings WHERE id < 20",
    "SELECT id, LAG(x) OVER (PARTITION BY person_id ORDER BY t) AS prev_x, "
    "LEAD(x, 2) OVER (PARTITION BY person_id ORDER BY t) AS next_x FROM readings",
    "SELECT id, FIRST_VALUE(x) OVER (PARTITION BY person_id ORDER BY t) AS fx, "
    "COUNT(*) OVER (PARTITION BY person_id ORDER BY t) AS cnt FROM readings",
    "SELECT id, MEDIAN(x) OVER (PARTITION BY person_id ORDER BY t) AS med FROM readings WHERE id < 25",
    # set operations
    "SELECT person_id FROM readings WHERE x > 5 UNION SELECT person_id FROM people",
    "SELECT person_id FROM readings WHERE x > 5 UNION ALL SELECT person_id FROM people",
    "SELECT person_id FROM readings INTERSECT SELECT person_id FROM people",
    "SELECT person_id FROM readings EXCEPT SELECT person_id FROM people",
    # subqueries: derived tables, scalar, IN, EXISTS, correlated
    "SELECT s.person_id, s.sx FROM (SELECT person_id, SUM(x) AS sx FROM readings "
    "GROUP BY person_id) AS s WHERE s.sx > 20",
    "SELECT id, x - (SELECT AVG(x) FROM readings) AS centered FROM readings WHERE id < 15",
    "SELECT name FROM people WHERE person_id IN (SELECT person_id FROM readings WHERE x > 6)",
    "SELECT name FROM people WHERE person_id NOT IN (SELECT person_id FROM readings WHERE x > 6)",
    "SELECT name FROM people AS p WHERE EXISTS "
    "(SELECT 1 FROM readings AS r WHERE r.person_id = p.person_id AND r.activity = 'walk')",
    "SELECT name FROM people AS p WHERE NOT EXISTS "
    "(SELECT 1 FROM readings AS r WHERE r.person_id = p.person_id)",
    "SELECT p.name, (SELECT COUNT(*) FROM readings AS r WHERE r.person_id = p.person_id) AS n "
    "FROM people AS p",
    "SELECT p.name, (SELECT MAX(x) FROM readings AS r WHERE r.person_id = p.person_id "
    "AND r.z IS NOT NULL) AS best FROM people AS p ORDER BY p.name",
    # the paper's query shape
    "SELECT REGR_INTERCEPT(y, x) OVER (PARTITION BY z ORDER BY t) FROM "
    "(SELECT x, y, z, t FROM readings)",
    # nested rewritten shape from Section 4.2
    "SELECT x, y, AVG(z) AS zavg, MAX(t) AS tmax FROM "
    "(SELECT x, y, z, t FROM readings WHERE x > y AND z < 2) AS inner_q "
    "GROUP BY x, y HAVING SUM(z) > 0",
]


def _materialize(relation: Relation):
    names = relation.schema.names
    return names, [tuple(row.get(name) for name in names) for row in relation.rows]


def assert_paths_agree(catalog, sql: str) -> None:
    compiled = QueryExecutor(catalog, use_compiled=True).execute(parse(sql))
    interpreted = QueryExecutor(catalog, use_compiled=False).execute(parse(sql))
    compiled_names, compiled_rows = _materialize(compiled)
    interpreted_names, interpreted_rows = _materialize(interpreted)
    assert compiled_names == interpreted_names, sql
    assert compiled_rows == interpreted_rows, sql


@pytest.mark.parametrize("sql", CORPUS, ids=range(len(CORPUS)))
def test_compiled_matches_interpreted(catalog, sql):
    assert_paths_agree(catalog, sql)


def test_corpus_covers_interesting_results(catalog):
    """Guard against a silently trivial corpus: spot-check a few cardinalities."""
    executor = QueryExecutor(catalog, use_compiled=True)
    join = executor.execute(
        parse("SELECT r.id FROM readings AS r JOIN rooms ON r.room_id = rooms.room_id")
    )
    assert len(join) > len(catalog["readings"].rows) / 2  # duplicate room_id fan-out
    grouped = executor.execute(
        parse("SELECT person_id, COUNT(*) AS n FROM readings GROUP BY person_id")
    )
    assert sum(row["n"] for row in grouped) == len(catalog["readings"])


def test_execution_mode_switch(catalog):
    assert default_execution_mode() == "compiled"
    with execution_mode("interpreted"):
        assert default_execution_mode() == "interpreted"
        assert not QueryExecutor(catalog).use_compiled
    assert default_execution_mode() == "compiled"
    assert QueryExecutor(catalog).use_compiled


def test_mode_rejects_unknown():
    with pytest.raises(ValueError):
        from repro.engine.executor import set_default_execution_mode

        set_default_execution_mode("vectorized")


@pytest.mark.slow
def test_differential_randomized_filters(catalog):
    """Randomized WHERE/projection combinations over both paths."""
    rng = random.Random(13)
    columns = ["x", "y", "z", "t"]
    comparisons = ["<", "<=", ">", ">=", "=", "<>"]
    for _ in range(40):
        column = rng.choice(columns)
        other = rng.choice([c for c in columns if c != column])
        op = rng.choice(comparisons)
        threshold = round(rng.uniform(0, 8), 1)
        sql = (
            f"SELECT id, {column}, {other} FROM readings "
            f"WHERE {column} {op} {threshold} OR {column} {op} {other} "
            f"ORDER BY id"
        )
        assert_paths_agree(catalog, sql)
