"""Tests for the query executor (via the Database façade)."""

import pytest

from repro.engine.database import Database
from repro.engine.errors import ExecutionError, SchemaError
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import DataType


@pytest.fixture
def db():
    database = Database("test")
    database.load_rows(
        "readings",
        [
            {"person": 1, "x": 1.0, "y": 0.5, "z": 1.4, "t": 0.0},
            {"person": 1, "x": 1.5, "y": 1.0, "z": 1.5, "t": 1.0},
            {"person": 2, "x": 2.0, "y": 2.5, "z": 0.4, "t": 2.0},
            {"person": 2, "x": 2.5, "y": 2.0, "z": 0.5, "t": 3.0},
            {"person": 3, "x": 3.0, "y": 1.0, "z": 1.9, "t": 4.0},
            {"person": 3, "x": 3.5, "y": 3.0, "z": None, "t": 5.0},
        ],
    )
    database.load_rows(
        "people",
        [
            {"person": 1, "name": "alice"},
            {"person": 2, "name": "bob"},
            {"person": 4, "name": "dora"},
        ],
    )
    return database


def test_projection_and_star(db):
    assert db.query("SELECT x, t FROM readings").column_names == ["x", "t"]
    assert db.query("SELECT * FROM readings").column_names == ["person", "x", "y", "z", "t"]


def test_where_filter(db):
    result = db.query("SELECT t FROM readings WHERE z < 1")
    assert result.column_values("t") == [2.0, 3.0]


def test_where_attribute_comparison(db):
    result = db.query("SELECT t FROM readings WHERE x > y")
    assert len(result) == 5


def test_expressions_in_projection(db):
    result = db.query("SELECT x + y AS s, ROUND(z, 0) AS zr FROM readings WHERE t = 0")
    assert result.rows[0] == {"s": 1.5, "zr": 1.0}


def test_group_by_having(db):
    result = db.query(
        "SELECT person, AVG(z) AS zavg, COUNT(*) AS n FROM readings "
        "GROUP BY person HAVING COUNT(*) >= 2 ORDER BY person"
    )
    assert len(result) == 3
    first = result.rows[0]
    assert first["person"] == 1
    assert first["zavg"] == pytest.approx(1.45)
    assert first["n"] == 2


def test_global_aggregate_without_group_by(db):
    result = db.query("SELECT COUNT(*) AS n, AVG(z) AS m FROM readings")
    assert result.rows[0]["n"] == 6
    assert result.rows[0]["m"] == pytest.approx((1.4 + 1.5 + 0.4 + 0.5 + 1.9) / 5)


def test_aggregate_over_empty_table():
    db = Database()
    db.create_table("empty", Schema([ColumnDef("a", DataType.INTEGER)]))
    result = db.query("SELECT COUNT(*) AS n FROM empty")
    assert result.rows == [{"n": 0}]


def test_count_star_empty_group_filtered_by_having(db):
    result = db.query("SELECT person FROM readings GROUP BY person HAVING SUM(z) > 100")
    assert len(result) == 0


def test_order_by_asc_desc_and_nulls(db):
    result = db.query("SELECT t, z FROM readings ORDER BY z DESC")
    zs = result.column_values("z")
    assert zs[0] == 1.9
    assert zs[-1] is None  # NULLs sort last in descending order


def test_limit_offset(db):
    result = db.query("SELECT t FROM readings ORDER BY t LIMIT 2 OFFSET 1")
    assert result.column_values("t") == [1.0, 2.0]


def test_distinct(db):
    result = db.query("SELECT DISTINCT person FROM readings")
    assert sorted(result.column_values("person")) == [1, 2, 3]


def test_inner_join(db):
    result = db.query(
        "SELECT r.t, p.name FROM readings r JOIN people p ON r.person = p.person ORDER BY r.t"
    )
    assert len(result) == 4
    assert result.rows[0]["name"] == "alice"


def test_left_join_produces_nulls(db):
    result = db.query(
        "SELECT r.person, p.name FROM readings r LEFT JOIN people p ON r.person = p.person "
        "WHERE r.t = 4"
    )
    assert result.rows[0]["name"] is None


def test_join_using(db):
    result = db.query("SELECT name FROM readings JOIN people USING (person) WHERE t = 2")
    assert result.rows[0]["name"] == "bob"


def test_subquery_in_from(db):
    result = db.query(
        "SELECT AVG(zavg) AS overall FROM "
        "(SELECT person, AVG(z) AS zavg FROM readings GROUP BY person)"
    )
    assert len(result) == 1
    assert result.rows[0]["overall"] is not None


def test_in_subquery(db):
    result = db.query(
        "SELECT t FROM readings WHERE person IN (SELECT person FROM people WHERE name = 'bob')"
    )
    assert result.column_values("t") == [2.0, 3.0]


def test_exists_correlated_subquery(db):
    result = db.query(
        "SELECT name FROM people p WHERE EXISTS "
        "(SELECT 1 FROM readings r WHERE r.person = p.person)"
    )
    assert sorted(result.column_values("name")) == ["alice", "bob"]


def test_scalar_subquery(db):
    result = db.query("SELECT (SELECT MAX(t) FROM readings) AS latest FROM people LIMIT 1")
    assert result.rows[0]["latest"] == 5.0


def test_set_operations(db):
    union = db.query("SELECT person FROM readings UNION SELECT person FROM people")
    assert sorted(union.column_values("person")) == [1, 2, 3, 4]
    intersect = db.query("SELECT person FROM readings INTERSECT SELECT person FROM people")
    assert sorted(intersect.column_values("person")) == [1, 2]
    except_ = db.query("SELECT person FROM people EXCEPT SELECT person FROM readings")
    assert except_.column_values("person") == [4]


def test_case_expression_execution(db):
    result = db.query(
        "SELECT t, CASE WHEN z < 1 THEN 'low' WHEN z < 1.6 THEN 'mid' ELSE 'high' END AS lvl "
        "FROM readings WHERE z IS NOT NULL ORDER BY t"
    )
    assert result.column_values("lvl") == ["mid", "mid", "low", "low", "high"]


def test_select_star_with_group_by_is_rejected(db):
    with pytest.raises(ExecutionError):
        db.query("SELECT * FROM readings GROUP BY person")


def test_unknown_table_raises(db):
    with pytest.raises((ExecutionError, SchemaError)):
        db.query("SELECT x FROM nope")


def test_duplicate_output_names_are_disambiguated(db):
    result = db.query("SELECT x, x FROM readings LIMIT 1")
    assert result.column_names == ["x", "x_2"]


def test_paper_rewritten_inner_query_runs(db):
    result = db.query(
        "SELECT x, y, AVG(z) AS zAVG, t FROM readings WHERE x > y AND z < 2 "
        "GROUP BY x, y HAVING SUM(z) > 0"
    )
    assert "zAVG" in result.column_names
    assert len(result) > 0


def test_insert_and_create_table_roundtrip():
    db = Database()
    schema = Schema([ColumnDef("a", DataType.INTEGER), ColumnDef("b", DataType.TEXT)])
    db.create_table("t", schema)
    assert db.insert_rows("t", [{"a": 1, "b": "x"}, {"a": 2}]) == 2
    result = db.query("SELECT a, b FROM t ORDER BY a")
    assert result.rows == [{"a": 1, "b": "x"}, {"a": 2, "b": None}]
    with pytest.raises(SchemaError):
        db.insert_rows("t", [{"nope": 1}])
    with pytest.raises(SchemaError):
        db.create_table("t", schema)
    db.drop_table("t")
    assert "t" not in db
