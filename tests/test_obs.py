"""Observability tests (PR 7): tracing, metrics, and query profiling.

The contract under test:

* ``profile=True`` attaches a :class:`~repro.obs.trace.QueryTrace` whose
  span totals reconcile with the runtime's own wall clock, renders an
  EXPLAIN-ANALYZE-style tree, and exports valid Chrome ``trace_event`` JSON;
* tracing is inert when disabled — no trace, no profile, and the
  serial/parallel differential oracle stays byte-identical with profiling
  on either side;
* spans stay correct under concurrency (no leakage between sessions) and
  chaos (retried and re-planned tasks produce *linked* spans, not
  duplicates; a killed node's spans finish ``aborted``);
* the vectorized engine records *why* it bailed, and the paper workloads
  take their expected scan paths;
* the metrics registry counts scheduler, session, cache and chaos activity.
"""

from __future__ import annotations

import json
import threading

import pytest

from tests.conftest import make_sensor_relation
from tests.test_runtime import RAW_WORKLOADS, build_tree_processor

from repro.obs.metrics import MetricsRegistry, delta, registry
from repro.obs.trace import QueryTrace, activate, current_span, maybe_span
from repro.policy.presets import figure4_policy
from repro.processor.paradise import ParadiseProcessor
from repro.processor.result import RuntimeStats
from repro.runtime import CostModel, QueryRequest, SessionFrontEnd
from repro.runtime.faults import KILL_NODE, TASK_ERROR, Fault, FailureInjector
from repro.sensors.scenario import INTEGRATED_SCHEMA

pytestmark = pytest.mark.obs

PIPELINE_SQL = (
    "SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) "
    "FROM (SELECT x, y, z, t FROM d)"
)


def build_flat_processor(rows: int = 300, **kwargs) -> ParadiseProcessor:
    processor = ParadiseProcessor(
        figure4_policy(), schema=INTEGRATED_SCHEMA, **kwargs
    )
    processor.load_data(make_sensor_relation(rows))
    return processor


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


def test_registry_counters_gauges_histograms():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(2)
    reg.gauge("g").set(5)
    reg.gauge("g").dec()
    for value in (1.0, 3.0):
        reg.histogram("h").observe(value)
    snap = reg.snapshot()
    assert snap["c"] == 3
    assert snap["g"] == 4
    assert snap["h.count"] == 2
    assert snap["h.total"] == 4.0
    assert snap["h.mean"] == 2.0
    assert snap["h.min"] == 1.0 and snap["h.max"] == 3.0


def test_registry_probes_and_delta():
    reg = MetricsRegistry()
    state = {"hits": 0}
    reg.probe("cache", lambda: dict(state))
    before = reg.snapshot()
    state["hits"] = 7
    diff = delta(before, reg.snapshot())
    assert diff["cache.hits"] == 7


def test_registry_is_thread_safe():
    reg = MetricsRegistry()

    def worker():
        for _ in range(1000):
            reg.counter("n").inc()

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert reg.value("n") == 8000


# ---------------------------------------------------------------------------
# trace primitives
# ---------------------------------------------------------------------------


def test_spans_nest_via_ambient_activation():
    trace = QueryTrace("q")
    with trace.span("outer") as outer:
        assert current_span() is outer
        with trace.span("inner") as inner:
            assert inner.parent_id == outer.span_id
    assert current_span() is None
    assert all(span.status == "ok" for span in trace.snapshot())


def test_ambient_parenting_never_crosses_traces():
    mine, theirs = QueryTrace("mine"), QueryTrace("theirs")
    with mine.span("outer"):
        span = theirs.begin("inner")
        assert span.parent_id is None  # ambient belongs to another trace
        theirs.finish(span)


def test_maybe_span_is_inert_without_a_trace():
    with maybe_span(None, "anything") as span:
        assert span is None
        assert current_span() is None
    with activate(None):
        assert current_span() is None


def test_chrome_export_is_valid_trace_event_json(tmp_path):
    processor = build_tree_processor(rows=120, execution="parallel")
    result = processor.process(
        RAW_WORKLOADS[0], "fig4", apply_rewriting=False, profile=True
    )
    path = tmp_path / "trace.json"
    result.trace.to_chrome(path)
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    assert events, "empty trace export"
    phases = {event["ph"] for event in events}
    assert "X" in phases and "M" in phases
    for event in events:
        assert event["pid"] == 1 and isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0
    names = {
        event["args"]["name"] for event in events if event["ph"] == "M"
    }
    assert "sensor_0" in names  # one synthetic thread per topology node


# ---------------------------------------------------------------------------
# profiling: EXPLAIN, EXPLAIN ANALYZE, calibration
# ---------------------------------------------------------------------------


def test_explain_renders_plan_and_placement_without_executing():
    processor = build_flat_processor(execution="parallel")
    before = registry.counter("runtime.tasks_executed").value
    text = processor.explain(PIPELINE_SQL, "ActionFilter")
    assert "admission: ok" in text
    assert "Vertical fragmentation plan" in text
    assert "parallel DAG" in text and "[fragment] @ sensor" in text
    assert registry.counter("runtime.tasks_executed").value == before  # nothing ran
    rejected = processor.explain(PIPELINE_SQL, "no_such_module")
    assert "REJECTED" in rejected


def test_profile_tree_reconciles_with_runtime_wall_clock():
    processor = build_flat_processor(rows=400, execution="parallel")
    result = processor.process(PIPELINE_SQL, "ActionFilter", profile=True)
    profile = result.profile
    assert profile is not None and result.trace is not None
    wall = result.runtime.wall_seconds
    assert profile.trace_wall_seconds == pytest.approx(wall, rel=0.05)
    rendered = profile.render()
    assert "profile:" in rendered and "scan paths" in rendered
    # Every executed task appears exactly once in the tree.
    task_spans = result.trace.by_kind("task")
    assert len(task_spans) == result.runtime.task_count
    assert all(span.status == "ok" for span in task_spans)


def test_profile_records_predictions_and_calibration():
    cost = CostModel(seconds_per_row=1e-6, seconds_per_kb=1e-6)
    processor = build_flat_processor(
        rows=300, execution="parallel", cost_model=cost
    )
    result = processor.process(PIPELINE_SQL, "ActionFilter", profile=True)
    spans = [
        span
        for span in result.trace.by_kind("task")
        if span.attrs.get("input_rows")
    ]
    assert spans and all("predicted_seconds" in span.attrs for span in spans)
    report = cost.calibration_report()
    assert report.sample_count >= result.runtime.task_count
    kinds = {entry.kind for entry in report.kinds}
    assert "fragment" in kinds
    assert "predicted vs observed" in report.render()


def test_serial_profile_produces_fragment_spans():
    processor = build_flat_processor(rows=200, execution="serial")
    result = processor.process(PIPELINE_SQL, "ActionFilter", profile=True)
    assert result.trace is not None
    fragments = result.trace.by_kind("fragment")
    assert {span.name for span in fragments} >= {"d1", "anonymize"}
    assert result.profile.render()


def test_profile_off_attaches_nothing():
    processor = build_flat_processor(rows=120, execution="parallel")
    result = processor.process(PIPELINE_SQL, "ActionFilter")
    assert result.trace is None and result.profile is None


def test_differential_oracle_unchanged_by_profiling():
    for query in RAW_WORKLOADS:
        serial = build_tree_processor(rows=150, execution="serial").process(
            query, "fig4", apply_rewriting=False
        )
        profiled = build_tree_processor(rows=150, execution="parallel").process(
            query, "fig4", apply_rewriting=False, profile=True
        )
        assert serial.result.schema.names == profiled.result.schema.names
        assert serial.result.rows == profiled.result.rows


# ---------------------------------------------------------------------------
# satellite: RuntimeStats.overlap + single-site task timing
# ---------------------------------------------------------------------------


def test_overlap_guards_against_zero_wall():
    stats = RuntimeStats(
        partition_width=1,
        task_count=0,
        merge_count=0,
        wall_seconds=0.0,
        busy_seconds=1.0,
    )
    assert stats.overlap == 0.0
    assert stats.overlap_factor == 1.0  # display keeps the neutral value
    stats.wall_seconds = 2.0
    assert stats.overlap == 0.5


def test_retry_does_not_double_charge_task_time():
    """An in-place retry overwrites its execution record (satellite 1)."""
    injector = FailureInjector(
        [Fault(kind=TASK_ERROR, node="sensor_1", times=2)]
    )
    processor = build_tree_processor(rows=160, execution="parallel")
    result = processor.process(
        RAW_WORKLOADS[0],
        "fig4",
        apply_rewriting=False,
        faults=injector,
        profile=True,
    )
    assert result.runtime.retried_attempts == 2
    names = [execution.fragment_name for execution in result.executions]
    assert len(names) == len(set(names)), f"duplicated executions: {names}"
    # The retried attempts left linked spans, and exactly one succeeded.
    retried = result.trace.find(status="retried")
    assert len(retried) == 2
    final = [
        span
        for span in result.trace.by_kind("task")
        if span.attrs.get("retry_of") and span.status == "ok"
    ]
    assert len(final) == 1
    linked_ids = {span.attrs["retry_of"] for span in final} | {
        span.attrs["retry_of"] for span in retried if "retry_of" in span.attrs
    }
    assert linked_ids <= {span.span_id for span in retried}


# ---------------------------------------------------------------------------
# satellite: vectorized bail reasons
# ---------------------------------------------------------------------------


def test_paper_workloads_take_expected_scan_paths():
    processor = build_flat_processor(rows=300)
    before = registry.snapshot(prefix="engine.vectorized.")
    result = processor.process(PIPELINE_SQL, "ActionFilter")
    assert result.admitted
    diff = delta(before, registry.snapshot(prefix="engine.vectorized."))
    hits = {key: value for key, value in diff.items() if value}
    # The rewritten pipeline runs two flat vectorized scans (d1, d2), one
    # grouped scan (d3), and bails only on the window-function stage.
    assert hits.get("engine.vectorized.flat", 0) >= 2
    assert hits.get("engine.vectorized.grouped", 0) >= 1
    bail_reasons = {
        key.rsplit(".", 1)[-1]
        for key in hits
        if ".bails." in key
    }
    assert bail_reasons == {"expression_item"}


def test_paper_workloads_take_typed_scan_backing():
    """The fig2/usecase pipeline consumes typed int64/float64 backings —
    the typed counter grows and no ``untyped_backing`` bail is recorded."""
    processor = build_flat_processor(rows=300)
    before = registry.snapshot(prefix="engine.vectorized.")
    result = processor.process(PIPELINE_SQL, "ActionFilter")
    assert result.admitted
    diff = delta(before, registry.snapshot(prefix="engine.vectorized."))
    assert diff.get("engine.vectorized.typed", 0) >= 1
    assert not diff.get("engine.vectorized.bails.untyped_backing", 0)


def test_untyped_backing_surfaces_in_profile_report():
    """A numeric column that lost its typed backing shows up in the profile
    report's scan-path section as an ``untyped_backing`` bail."""
    from repro.engine.schema import ColumnDef, Schema
    from repro.engine.table import Relation
    from repro.engine.types import DataType

    schema = Schema(
        [
            ColumnDef(name="person_id", data_type=DataType.INTEGER),
            ColumnDef(name="x", data_type=DataType.FLOAT),
        ]
    )
    # from_columns keeps the backing it is given: plain lists here, so the
    # declared-INTEGER column scans without a typed fast path.
    degraded = Relation.from_columns(
        schema,
        [list(range(50)), [float(i) for i in range(50)]],
        name="d",
    )
    processor = ParadiseProcessor(figure4_policy(), schema=None)
    processor.load_data(degraded)
    result = processor.process(
        "SELECT person_id FROM d WHERE person_id >= 0",
        "fig4",
        apply_rewriting=False,
        anonymize=False,
        profile=True,
    )
    assert result.profile is not None
    bails = result.profile.scan_paths.get("bails", {})
    assert bails.get("untyped_backing", 0) >= 1
    assert "untyped_backing" in result.profile.render()


def test_bail_reasons_cover_distinct_causes():
    from repro.engine.vectorized import BailReason, stats

    base = dict(stats.bails)
    processor = build_flat_processor(rows=80)
    cases = {
        # Plain-column ORDER BY is now a vectorized index permutation; only
        # expression order keys still belong to the row path.
        "SELECT x, y FROM d ORDER BY x + y LIMIT 5": BailReason.DISTINCT_OR_ORDER_BY,
        "SELECT x + y FROM d": BailReason.EXPRESSION_ITEM,
    }
    for query, reason in cases.items():
        processor.process(query, "fig4", apply_rewriting=False)
        grew = stats.bails.get(reason.value, 0) - base.get(reason.value, 0)
        assert grew >= 1, f"{query!r} did not record {reason.value}"


# ---------------------------------------------------------------------------
# trace integrity under concurrency and chaos
# ---------------------------------------------------------------------------


@pytest.mark.concurrency
def test_concurrent_sessions_keep_spans_isolated():
    processor = build_tree_processor(rows=150, execution="parallel")
    solo = processor.process(
        RAW_WORKLOADS[2], "fig4", apply_rewriting=False, profile=True
    )
    expected = len(solo.trace.by_kind("task"))
    requests = [
        QueryRequest(
            RAW_WORKLOADS[2],
            "fig4",
            options={"apply_rewriting": False, "profile": True},
        )
        for _ in range(6)
    ]
    with SessionFrontEnd(processor, max_concurrent=4) as front_end:
        results = front_end.run_batch(requests)
    for result in results:
        trace = result.trace
        assert all(span.trace is trace for span in trace.snapshot())
        assert len(trace.by_kind("task")) == expected
        assert all(span.finished for span in trace.snapshot())
        # Every task span nests under its epoch's dag_run root.
        runs = {span.span_id for span in trace.by_kind("dag_run")}
        assert all(
            span.parent_id in runs for span in trace.by_kind("task")
        )
        assert result.result.rows == solo.result.rows


@pytest.mark.concurrency
def test_mixed_profiled_and_unprofiled_sessions():
    processor = build_tree_processor(rows=120, execution="parallel")
    requests = [
        QueryRequest(
            RAW_WORKLOADS[0],
            "fig4",
            options={"apply_rewriting": False, "profile": bool(index % 2)},
        )
        for index in range(6)
    ]
    with SessionFrontEnd(processor, max_concurrent=3) as front_end:
        results = front_end.run_batch(requests)
    for index, result in enumerate(results):
        if index % 2:
            assert result.trace is not None and result.profile is not None
        else:
            assert result.trace is None and result.profile is None


@pytest.mark.chaos
def test_killed_node_spans_abort_and_replan_links_epochs():
    injector = FailureInjector([Fault(kind=KILL_NODE, node="sensor_2")])
    processor = build_tree_processor(rows=160, execution="parallel")
    result = processor.process(
        RAW_WORKLOADS[0],
        "fig4",
        apply_rewriting=False,
        faults=injector,
        profile=True,
    )
    assert result.runtime.replans == 1
    trace = result.trace
    epochs = sorted(span.attrs["epoch"] for span in trace.by_kind("dag_run"))
    assert epochs == [0, 1]
    aborted_runs = trace.find(kind="dag_run", status="aborted")
    assert len(aborted_runs) == 1 and aborted_runs[0].attrs["epoch"] == 0
    assert trace.find(kind="task", status="aborted")
    # Re-planned tasks are distinguishable by epoch, never duplicated
    # within one: each (task_id, epoch, attempt) triple is unique.
    keys = [
        (span.attrs["task_id"], span.attrs["epoch"], span.attrs["attempt"])
        for span in trace.by_kind("task")
    ]
    assert len(keys) == len(set(keys))
    # The second epoch completed cleanly.
    final_tasks = [
        span
        for span in trace.by_kind("task")
        if span.attrs["epoch"] == 1
    ]
    assert final_tasks and all(span.status == "ok" for span in final_tasks)


@pytest.mark.chaos
def test_chaos_counters_accumulate():
    before = registry.snapshot(prefix="chaos.")
    deaths_before = registry.counter("runtime.node_deaths").value
    injector = FailureInjector([Fault(kind=KILL_NODE, node="sensor_0")])
    processor = build_tree_processor(rows=160, execution="parallel")
    processor.process(
        RAW_WORKLOADS[2], "fig4", apply_rewriting=False, faults=injector
    )
    diff = delta(before, registry.snapshot(prefix="chaos."))
    assert diff.get("chaos.faults_fired", 0) >= 1
    assert registry.counter("runtime.node_deaths").value - deaths_before == 1


# ---------------------------------------------------------------------------
# cache and session metrics
# ---------------------------------------------------------------------------


def test_parse_cache_metrics_count_hits():
    before = registry.snapshot(prefix="sql.parse_cache")
    processor = build_flat_processor(rows=50)
    for _ in range(3):
        processor.process("SELECT x FROM d WHERE z < 1.0", "fig4", apply_rewriting=False)
    diff = delta(before, registry.snapshot(prefix="sql.parse_cache"))
    assert diff.get("sql.parse_cache.misses", 0) >= 1
    assert diff.get("sql.parse_cache.hits", 0) >= 2


def test_session_metrics_track_admission():
    before = registry.snapshot(prefix="session.")
    processor = build_tree_processor(rows=100, execution="parallel")
    requests = [
        QueryRequest(RAW_WORKLOADS[0], "fig4", options={"apply_rewriting": False})
        for _ in range(4)
    ]
    with SessionFrontEnd(processor, max_concurrent=2) as front_end:
        front_end.run_batch(requests)
    diff = delta(before, registry.snapshot(prefix="session."))
    assert diff.get("session.submitted", 0) == 4
    assert diff.get("session.completed", 0) == 4
    assert diff.get("session.queue_wait_seconds.count", 0) == 4
    assert registry.value("session.active") == 0
