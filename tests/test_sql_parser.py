"""Tests for the SQL parser."""

import pytest

from repro.sql import ast
from repro.sql.errors import ParseError
from repro.sql.parser import parse, parse_expression


def test_simple_select():
    query = parse("SELECT x, y FROM d")
    assert isinstance(query, ast.SelectQuery)
    assert [item.expression.name for item in query.items] == ["x", "y"]
    assert isinstance(query.from_clause, ast.TableRef)
    assert query.from_clause.name == "d"


def test_select_star():
    query = parse("SELECT * FROM stream")
    assert query.is_select_star
    assert query.from_clause.name == "stream"


def test_select_with_alias():
    query = parse("SELECT AVG(z) AS zavg FROM d")
    item = query.items[0]
    assert item.alias == "zavg"
    assert isinstance(item.expression, ast.FunctionCall)
    assert item.expression.name == "AVG"


def test_implicit_alias_without_as():
    query = parse("SELECT x foo FROM d")
    assert query.items[0].alias == "foo"


def test_where_comparison_precedence():
    query = parse("SELECT x FROM d WHERE x > y AND z < 2 OR t = 1")
    where = query.where
    assert isinstance(where, ast.BinaryOp)
    assert where.operator == "OR"
    assert where.left.operator == "AND"


def test_group_by_having():
    query = parse("SELECT x, SUM(z) FROM d GROUP BY x HAVING SUM(z) > 100")
    assert len(query.group_by) == 1
    assert isinstance(query.having, ast.BinaryOp)


def test_order_by_desc_and_limit_offset():
    query = parse("SELECT x FROM d ORDER BY x DESC, y LIMIT 10 OFFSET 5")
    assert query.order_by[0].ascending is False
    assert query.order_by[1].ascending is True
    assert query.limit == 10
    assert query.offset == 5


def test_distinct():
    query = parse("SELECT DISTINCT x FROM d")
    assert query.distinct


def test_nested_subquery_in_from():
    query = parse("SELECT a FROM (SELECT x AS a FROM d) sub")
    assert isinstance(query.from_clause, ast.SubqueryRef)
    assert query.from_clause.alias == "sub"
    assert isinstance(query.from_clause.query, ast.SelectQuery)


def test_window_function_with_partition_and_order():
    query = parse(
        "SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) FROM d"
    )
    call = query.items[0].expression
    assert isinstance(call, ast.FunctionCall)
    assert call.name == "REGR_INTERCEPT"
    assert call.window is not None
    assert len(call.window.partition_by) == 1
    assert len(call.window.order_by) == 1


def test_window_frame():
    query = parse(
        "SELECT SUM(z) OVER (ORDER BY t ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) FROM d"
    )
    frame = query.items[0].expression.window.frame
    assert frame is not None
    assert frame.mode == "ROWS"
    assert frame.start.kind == "PRECEDING"
    assert frame.end.kind == "CURRENT ROW"


def test_count_star():
    query = parse("SELECT COUNT(*) FROM d")
    call = query.items[0].expression
    assert call.name == "COUNT"
    assert isinstance(call.arguments[0], ast.Star)


def test_count_distinct():
    query = parse("SELECT COUNT(DISTINCT x) FROM d")
    assert query.items[0].expression.distinct


def test_joins():
    query = parse("SELECT a.x FROM d a JOIN e b ON a.t = b.t LEFT JOIN f ON f.t = a.t")
    outer = query.from_clause
    assert isinstance(outer, ast.Join)
    assert outer.join_type == "LEFT"
    inner = outer.left
    assert isinstance(inner, ast.Join)
    assert inner.join_type == "INNER"


def test_cross_join_with_comma():
    query = parse("SELECT 1 FROM a, b")
    assert isinstance(query.from_clause, ast.Join)
    assert query.from_clause.join_type == "CROSS"


def test_join_using():
    query = parse("SELECT x FROM a JOIN b USING (t, x)")
    assert query.from_clause.using == ["t", "x"]


def test_in_list_and_in_subquery():
    query = parse("SELECT x FROM d WHERE x IN (1, 2, 3) AND y NOT IN (SELECT y FROM e)")
    terms = ast.conjunction_terms(query.where)
    assert isinstance(terms[0], ast.InList)
    assert isinstance(terms[1], ast.InSubquery)
    assert terms[1].negated


def test_between_like_is_null():
    query = parse(
        "SELECT x FROM d WHERE x BETWEEN 1 AND 2 AND c LIKE 'a%' AND y IS NOT NULL"
    )
    terms = ast.conjunction_terms(query.where)
    assert isinstance(terms[0], ast.Between)
    assert isinstance(terms[1], ast.Like)
    assert isinstance(terms[2], ast.IsNull)
    assert terms[2].negated


def test_exists():
    query = parse("SELECT x FROM d WHERE EXISTS (SELECT 1 FROM e)")
    assert isinstance(query.where, ast.Exists)


def test_case_expression():
    query = parse("SELECT CASE WHEN z < 1 THEN 'low' ELSE 'high' END FROM d")
    case = query.items[0].expression
    assert isinstance(case, ast.CaseExpression)
    assert len(case.branches) == 1
    assert case.default is not None


def test_cast():
    expression = parse_expression("CAST(x AS INTEGER)")
    assert isinstance(expression, ast.Cast)
    assert expression.target_type == "INTEGER"


def test_arithmetic_precedence():
    expression = parse_expression("1 + 2 * 3")
    assert expression.operator == "+"
    assert expression.right.operator == "*"


def test_unary_minus_and_not():
    expression = parse_expression("NOT -x > 1")
    assert isinstance(expression, ast.UnaryOp)
    assert expression.operator == "NOT"


def test_set_operations():
    query = parse("SELECT x FROM a UNION ALL SELECT x FROM b EXCEPT SELECT x FROM c")
    assert isinstance(query, ast.SetOperation)
    assert query.operator == "EXCEPT"
    assert isinstance(query.left, ast.SetOperation)
    assert query.left.all is True


def test_qualified_star():
    query = parse("SELECT d.* FROM d")
    assert isinstance(query.items[0].expression, ast.Star)
    assert query.items[0].expression.table == "d"


def test_scalar_subquery():
    query = parse("SELECT (SELECT MAX(t) FROM d) FROM d")
    assert isinstance(query.items[0].expression, ast.ScalarSubquery)


def test_paper_nested_query_roundtrip(paper_sql):
    query = parse(paper_sql)
    assert isinstance(query, ast.SelectQuery)
    inner = query.from_clause.query
    assert isinstance(inner, ast.SelectQuery)
    assert [item.expression.name for item in inner.items] == ["x", "y", "z", "t"]


def test_trailing_garbage_raises():
    with pytest.raises(ParseError):
        parse("SELECT x FROM d garbage garbage garbage ,")


def test_missing_from_is_allowed():
    query = parse("SELECT 1 + 1")
    assert query.from_clause is None


def test_unexpected_token_raises():
    with pytest.raises(ParseError):
        parse("SELECT FROM d")


def test_empty_case_raises():
    with pytest.raises(ParseError):
        parse("SELECT CASE END FROM d")


def test_semicolon_is_accepted():
    query = parse("SELECT x FROM d;")
    assert isinstance(query, ast.SelectQuery)
