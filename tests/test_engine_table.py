"""Tests for the Relation container."""

import pytest

from repro.engine.errors import SchemaError
from repro.engine.schema import Schema
from repro.engine.table import Relation, concat


def test_from_rows_infers_schema(small_relation):
    relation = Relation.from_rows(small_relation.to_dicts())
    assert relation.column_names == ["a", "b", "c"]
    assert len(relation) == 4


def test_column_values(small_relation):
    assert small_relation.column_values("a") == [1, 2, 3, 4]
    with pytest.raises(SchemaError):
        small_relation.column_values("nope")


def test_select_project_drop(small_relation):
    filtered = small_relation.select(lambda row: row["a"] > 2)
    assert len(filtered) == 2
    projected = small_relation.project(["c", "a"])
    assert projected.column_names == ["c", "a"]
    assert projected[0] == {"c": "red", "a": 1}
    dropped = small_relation.drop(["b"])
    assert dropped.column_names == ["a", "c"]


def test_rename(small_relation):
    renamed = small_relation.rename({"a": "alpha"})
    assert renamed.column_names == ["alpha", "b", "c"]
    assert renamed[0]["alpha"] == 1
    # Original untouched.
    assert small_relation.column_names == ["a", "b", "c"]


def test_limit_order_by(small_relation):
    ordered = small_relation.order_by(lambda row: row["a"], reverse=True)
    assert ordered[0]["a"] == 4
    assert len(small_relation.limit(2)) == 2


def test_map_rows_and_copy(small_relation):
    doubled = small_relation.map_rows(lambda row: {**row, "a": row["a"] * 2})
    assert doubled.column_values("a") == [2, 4, 6, 8]
    copy = small_relation.copy()
    copy.rows[0]["a"] = 99
    assert small_relation[0]["a"] == 1


def test_extend_and_cell_count(small_relation):
    relation = small_relation.copy()
    relation.extend([{"a": 5, "b": 5.5, "c": "red"}])
    assert len(relation) == 5
    assert relation.cell_count == 15


def test_estimated_bytes_positive(small_relation):
    assert small_relation.estimated_bytes() > 0
    empty = Relation.empty(Schema.from_names(["a"]))
    assert empty.estimated_bytes() == 0


def test_distinct():
    relation = Relation.from_rows([{"a": 1}, {"a": 1}, {"a": 2}])
    assert len(relation.distinct()) == 2


def test_pretty_contains_header_and_rows(small_relation):
    text = small_relation.pretty(max_rows=2)
    assert "a" in text.splitlines()[0]
    assert "(4 rows total)" in text


def test_concat_checks_schema(small_relation):
    doubled = concat([small_relation, small_relation])
    assert len(doubled) == 8
    with pytest.raises(SchemaError):
        concat([small_relation, Relation.from_rows([{"other": 1}])])
    with pytest.raises(SchemaError):
        concat([])
