"""Tests for incremental standing queries (delta-maintained state trees).

The contract under test (see :mod:`repro.runtime.standing`): after every
refresh, each registered standing query's maintained result is
**byte-identical** (wire encoding) to from-scratch re-execution over the
current data — under both engine modes, with empty/single-row deltas, with
late-appearing holders, and under concurrent producers.  On top of the
differential guarantee: cross-session sharing (containment-equal queries
attach to one state tree), the admission/rewriting gate, and the
observability surface (metrics, profile section, linked refresh spans).
"""

from __future__ import annotations

import threading

import pytest

from tests.conftest import make_sensor_relation

from repro.engine.wire import pack_state_relation
from repro.fragment.topology import Topology
from repro.obs.metrics import registry
from repro.obs.trace import QueryTrace
from repro.policy.presets import figure4_policy
from repro.processor.paradise import ParadiseProcessor
from repro.runtime import (
    SessionFrontEnd,
    StandingQueryError,
    StandingQueryRuntime,
)
from repro.sensors.scenario import INTEGRATED_SCHEMA

pytestmark = pytest.mark.standing


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def build_tree_processor(
    rows: int = 240, n_sensors: int = 8, **kwargs
) -> ParadiseProcessor:
    topology = Topology.smart_home_tree(n_sensors=n_sensors, sensors_per_appliance=4)
    kwargs.setdefault("schema", INTEGRATED_SCHEMA)
    processor = ParadiseProcessor(figure4_policy(), topology=topology, **kwargs)
    processor.load_data(make_sensor_relation(rows))
    return processor


def assert_byte_identical(maintained, oracle, context=""):
    assert maintained.schema.names == oracle.schema.names, context
    assert pack_state_relation(maintained) == pack_state_relation(oracle), context


def feed_chunks(rows: int, chunk: int, seed: int = 11):
    relation = make_sensor_relation(rows, seed=seed)
    return [
        relation.slice_rows(start, min(start + chunk, rows), name="d")
        for start in range(0, rows, chunk)
    ]


STANDING_SQL = (
    "SELECT activity, COUNT(*) AS n, AVG(z) AS az, SUM(z) AS sz "
    "FROM d GROUP BY activity HAVING COUNT(*) > 2 ORDER BY COUNT(*) DESC"
)


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT DISTINCT activity FROM d",
        "SELECT x, z FROM d WHERE z < 1.5",
        "SELECT activity, COUNT(*) AS n FROM d GROUP BY activity LIMIT 2",
        # ORDER BY on an output alias references a non-key plain column,
        # which the decomposable-aggregation class excludes; spell the
        # aggregate out (ORDER BY AVG(z)) instead.
        "SELECT activity, AVG(z) AS az FROM d GROUP BY activity ORDER BY az",
        "SELECT a.activity, COUNT(*) FROM d a JOIN d b ON a.t = b.t GROUP BY a.activity",
    ],
)
def test_register_rejects_non_decomposable_queries(sql):
    runtime = StandingQueryRuntime(build_tree_processor(rows=40))
    with pytest.raises(StandingQueryError):
        runtime.register(sql)


@pytest.mark.parametrize("engine_mode", ["interpreted", "compiled"])
def test_initial_result_matches_oracle(engine_mode):
    processor = build_tree_processor(engine_mode=engine_mode)
    runtime = StandingQueryRuntime(processor)
    handle = runtime.register(STANDING_SQL)
    assert handle.epoch == 0 and not handle.shared
    assert_byte_identical(handle.result(), runtime.reexecute(handle))


# ---------------------------------------------------------------------------
# the differential guarantee, refresh by refresh
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine_mode", ["interpreted", "compiled"])
def test_every_refresh_is_byte_identical_to_reexecution(engine_mode):
    processor = build_tree_processor(engine_mode=engine_mode)
    runtime = StandingQueryRuntime(processor)
    handles = [
        runtime.register(STANDING_SQL),
        runtime.register(
            "SELECT person_id, COUNT(*) AS n, MIN(z) AS lo, MAX(z) AS hi "
            "FROM d GROUP BY person_id"
        ),
        runtime.register(
            "SELECT activity, STDDEV(z) AS s FROM d WHERE z < 1.5 GROUP BY activity"
        ),
    ]
    holders = processor.network.partition_holders("d")
    for index, delta in enumerate(feed_chunks(rows=120, chunk=20)):
        epoch = runtime.append(holders[index % len(holders)], delta)
        assert epoch == index + 1
        for handle in handles:
            assert handle.epoch == epoch
            assert_byte_identical(
                handle.result(),
                runtime.reexecute(handle),
                f"epoch {epoch}: {handle.sql}",
            )


def test_single_row_and_empty_deltas():
    processor = build_tree_processor()
    runtime = StandingQueryRuntime(processor)
    handle = runtime.register(STANDING_SQL)
    leaf = processor.network.partition_holders("d")[0]
    before = pack_state_relation(handle.result())

    runtime.append(leaf, feed_chunks(rows=1, chunk=1, seed=5)[0])
    assert handle.epoch == 1
    assert_byte_identical(handle.result(), runtime.reexecute(handle))

    # An empty delta advances the epoch but must not recompute anything:
    # the maintained bytes are exactly the previous epoch's.
    refreshed = pack_state_relation(handle.result())
    runtime.append(leaf, make_sensor_relation(0))
    assert handle.epoch == 2
    assert pack_state_relation(handle.result()) == refreshed != before


def test_min_max_ties_keep_first_occurrence_semantics():
    """A delta re-introducing an existing extremum must not change which
    occurrence MIN/MAX report — first-occurrence over the concatenated
    stream, exactly like the oracle's single pass."""
    processor = build_tree_processor(rows=60)
    runtime = StandingQueryRuntime(processor)
    handle = runtime.register(
        "SELECT activity, MIN(z) AS lo, MAX(z) AS hi, COUNT(*) AS n "
        "FROM d GROUP BY activity"
    )
    low = min(row["lo"] for row in runtime.reexecute(handle).rows)
    # seed=3 overlaps the value range of the loaded data, so the delta
    # re-introduces existing extrema and exercises the tie-keeping rule.
    leaf = processor.network.partition_holders("d")[1]
    runtime.append(leaf, make_sensor_relation(12, seed=3))
    assert_byte_identical(handle.result(), runtime.reexecute(handle))
    assert min(row["lo"] for row in handle.result().rows) <= low


def test_new_holder_appearing_after_registration():
    """A node that receives its first chunk after the tree was built joins
    the placement without disturbing the differential guarantee."""
    processor = build_tree_processor()
    runtime = StandingQueryRuntime(processor)
    handle = runtime.register(STANDING_SQL)
    assert "pc" not in handle.tree.leaf_states
    runtime.append("pc", feed_chunks(rows=30, chunk=30, seed=9)[0])
    assert "pc" in handle.tree.leaf_states
    assert_byte_identical(handle.result(), runtime.reexecute(handle))
    # And subsequent deltas on old and new holders keep holding it.
    runtime.append(processor.network.partition_holders("d")[0], feed_chunks(20, 20)[0])
    runtime.append("pc", feed_chunks(rows=10, chunk=10, seed=21)[0])
    assert_byte_identical(handle.result(), runtime.reexecute(handle))


# ---------------------------------------------------------------------------
# cross-session sharing
# ---------------------------------------------------------------------------


def test_identical_and_subset_queries_share_one_tree():
    runtime = StandingQueryRuntime(build_tree_processor())
    base = runtime.register(STANDING_SQL)
    twin = runtime.register(STANDING_SQL)
    # Subset of the tree's aggregates, in a different order: attaches with
    # a remapped state layout instead of materializing a second tree.
    subset = runtime.register(
        "SELECT activity, SUM(z) AS total, COUNT(*) AS n FROM d GROUP BY activity"
    )
    assert runtime.tree_count == 1
    assert base.tree is twin.tree is subset.tree
    assert len(base.tree.subscribers) == 3
    assert base.shared and twin.shared and subset.shared
    assert subset.state_map == [2, 0]  # SUM(z), COUNT(*) in the core's order

    # A non-subset aggregate needs state the tree never maintained.
    other = runtime.register(
        "SELECT activity, MIN(z) AS lo FROM d GROUP BY activity"
    )
    assert other.tree is not base.tree
    assert runtime.tree_count == 2

    leaf = runtime.network.partition_holders("d")[2]
    runtime.append(leaf, feed_chunks(rows=25, chunk=25)[0])
    for handle in (base, twin, subset, other):
        assert_byte_identical(handle.result(), runtime.reexecute(handle), handle.sql)


def test_where_and_group_keys_split_trees():
    runtime = StandingQueryRuntime(build_tree_processor())
    plain = runtime.register("SELECT activity, AVG(z) AS az FROM d GROUP BY activity")
    filtered = runtime.register(
        "SELECT activity, AVG(z) AS az FROM d WHERE z < 1.5 GROUP BY activity"
    )
    same_filter = runtime.register(
        "SELECT activity, AVG(z) AS az FROM d WHERE z < 1.5 GROUP BY activity "
        "HAVING AVG(z) > 0.2"
    )
    keys = runtime.register(
        "SELECT person_id, activity, AVG(z) AS az FROM d GROUP BY person_id, activity"
    )
    assert plain.tree is not filtered.tree
    assert filtered.tree is same_filter.tree  # identical WHERE shares
    assert keys.tree not in (plain.tree, filtered.tree)
    assert runtime.tree_count == 3
    leaf = runtime.network.partition_holders("d")[0]
    runtime.append(leaf, feed_chunks(rows=20, chunk=20, seed=2)[0])
    for handle in (plain, filtered, same_filter, keys):
        assert_byte_identical(handle.result(), runtime.reexecute(handle), handle.sql)


def test_having_and_order_variants_share_and_finalize_per_subscriber():
    """HAVING thresholds and ORDER BY directions are finalize-tail-only:
    all variants ride one tree yet keep distinct results."""
    runtime = StandingQueryRuntime(build_tree_processor())
    loose = runtime.register(
        "SELECT activity, COUNT(*) AS n FROM d GROUP BY activity "
        "HAVING COUNT(*) > 1 ORDER BY COUNT(*) ASC"
    )
    strict = runtime.register(
        "SELECT activity, COUNT(*) AS n FROM d GROUP BY activity "
        "HAVING COUNT(*) > 1000000 ORDER BY COUNT(*) DESC"
    )
    assert loose.tree is strict.tree
    assert len(strict.result()) == 0 < len(loose.result())
    runtime.append(
        runtime.network.partition_holders("d")[3], feed_chunks(15, 15, seed=8)[0]
    )
    for handle in (loose, strict):
        assert_byte_identical(handle.result(), runtime.reexecute(handle), handle.sql)


def test_session_front_end_shares_across_registrations():
    processor = build_tree_processor()
    front_end = SessionFrontEnd(processor)
    before = registry.counter("session.standing_registered").value
    first = front_end.register_standing(STANDING_SQL, "ActionFilter")
    second = front_end.register_standing(STANDING_SQL, "ActionFilter")
    assert registry.counter("session.standing_registered").value == before + 2
    assert first.tree is second.tree and first.shared
    assert front_end.standing is front_end.standing  # stable lazy singleton
    assert_byte_identical(first.result(), front_end.standing.reexecute(first))


def test_apply_rewriting_routes_through_privacy_gate():
    """With ``apply_rewriting=True`` the registered form is the privacy-
    rewritten query (the policy's z-filter appears), and the maintained
    result tracks *that* query's oracle."""
    runtime = StandingQueryRuntime(build_tree_processor())
    handle = runtime.register(
        "SELECT activity, COUNT(*) AS n, AVG(z) AS az FROM d GROUP BY activity",
        module_id="ActionFilter",
        apply_rewriting=True,
    )
    assert "z < 2" in handle.sql
    assert_byte_identical(handle.result(), runtime.reexecute(handle))
    runtime.append(
        runtime.network.partition_holders("d")[0], feed_chunks(20, 20, seed=4)[0]
    )
    assert_byte_identical(handle.result(), runtime.reexecute(handle))


# ---------------------------------------------------------------------------
# observability: metrics, profile section, linked refresh spans
# ---------------------------------------------------------------------------


def test_standing_metrics_populate():
    before = registry.snapshot(prefix="standing.")
    runtime = StandingQueryRuntime(build_tree_processor())
    runtime.register(STANDING_SQL)
    runtime.register(STANDING_SQL)
    runtime.append(
        runtime.network.partition_holders("d")[0], feed_chunks(20, 20)[0]
    )
    after = registry.snapshot(prefix="standing.")
    assert after["standing.registered"] - before.get("standing.registered", 0) == 2
    assert after["standing.shared_attach"] - before.get("standing.shared_attach", 0) == 1
    assert after["standing.refreshes"] - before.get("standing.refreshes", 0) == 1
    assert after["standing.delta_rows"] - before.get("standing.delta_rows", 0) == 20
    assert (
        after["standing.subscriber_refreshes"]
        - before.get("standing.subscriber_refreshes", 0)
        == 2
    )
    assert after["standing.state_bytes"] > 0
    assert after["standing.refresh_seconds.count"] - before.get(
        "standing.refresh_seconds.count", 0
    ) == 1
    assert after["standing.finalize_seconds.count"] - before.get(
        "standing.finalize_seconds.count", 0
    ) == 2


def test_profile_report_surfaces_standing_section():
    from repro.obs.profile import build_profile_report

    trace = QueryTrace("standing-profile")
    metrics_before = registry.snapshot()
    runtime = StandingQueryRuntime(build_tree_processor(), trace=trace)
    runtime.register(STANDING_SQL)
    runtime.append(
        runtime.network.partition_holders("d")[1], feed_chunks(10, 10)[0]
    )
    report = build_profile_report(
        trace,
        metrics_before=metrics_before,
        metrics_after=registry.snapshot(),
    )
    assert report.standing.get("registered") == 1
    assert report.standing.get("refreshes") == 1
    assert report.standing.get("delta_rows") == 10
    assert report.standing.get("trees") >= 1
    rendered = report.render()
    assert "standing queries:" in rendered
    assert "refreshes" in rendered


def test_refresh_spans_link_epochs():
    trace = QueryTrace("standing-spans")
    runtime = StandingQueryRuntime(build_tree_processor(), trace=trace)
    runtime.register(STANDING_SQL)
    leaf = runtime.network.partition_holders("d")[0]
    runtime.append(leaf, feed_chunks(10, 10, seed=1)[0])
    runtime.append(leaf, feed_chunks(10, 10, seed=2)[0])
    spans = trace.by_kind("standing")
    assert [span.name for span in spans] == ["refresh[epoch=1]", "refresh[epoch=2]"]
    first, second = spans
    assert first.attrs["delta_rows"] == 10
    # Epoch chain: each refresh span points at its predecessor, the same
    # linking convention the scheduler uses for retry spans.
    assert "previous_epoch_span" not in first.attrs
    assert second.attrs["previous_epoch_span"] == first.span_id
    assert all(span.finished for span in spans)


# ---------------------------------------------------------------------------
# concurrency and stream binding
# ---------------------------------------------------------------------------


@pytest.mark.concurrency
def test_concurrent_producers_interleave_at_chunk_granularity():
    processor = build_tree_processor()
    runtime = StandingQueryRuntime(processor)
    handles = [
        runtime.register(STANDING_SQL),
        runtime.register(
            "SELECT person_id, COUNT(*) AS n, SUM(z) AS sz FROM d GROUP BY person_id"
        ),
    ]
    holders = processor.network.partition_holders("d")
    chunks = feed_chunks(rows=160, chunk=10, seed=13)
    errors = []

    def producer(worker: int):
        try:
            for index, delta in enumerate(chunks):
                if index % 4 == worker:
                    runtime.append(holders[index % len(holders)], delta)
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)

    threads = [threading.Thread(target=producer, args=(worker,)) for worker in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert runtime.refresh_epoch == len(chunks)
    assert processor.network.base_table_rows("d") == 240 + 160
    for handle in handles:
        assert handle.epoch == len(chunks)
        assert_byte_identical(handle.result(), runtime.reexecute(handle), handle.sql)


def test_bind_stream_feeds_refreshes():
    from repro.streams import SensorStream

    processor = build_tree_processor()
    runtime = StandingQueryRuntime(processor)
    handle = runtime.register(STANDING_SQL)
    leaf = processor.network.partition_holders("d")[0]
    stream = SensorStream("s0", capacity=64)
    listener = runtime.bind_stream(stream, leaf)

    readings = [dict(row) for row in make_sensor_relation(12, seed=31).rows]
    stream.push_many(readings)  # one batch -> one refresh epoch
    assert runtime.refresh_epoch == 1
    stream.push(readings[0])  # single reading -> single-row delta
    assert runtime.refresh_epoch == 2
    assert_byte_identical(handle.result(), runtime.reexecute(handle))

    stream.unsubscribe(listener)
    stream.push(readings[1])
    assert runtime.refresh_epoch == 2  # detached: no further refreshes
