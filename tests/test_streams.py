"""Tests for the stream processing of the sensor level (E4)."""

import pytest

from repro.engine.errors import ExecutionError
from repro.streams import SensorStream, SlidingWindow, StreamFilter, TumblingWindow, WindowAggregate


def make_readings(count=60, z_step=0.1):
    return [{"t": float(i), "z": round(i * z_step, 3), "x": float(i % 5)} for i in range(count)]


def test_stream_filter_constant_comparisons():
    assert StreamFilter("z", "<", 2).matches({"z": 1})
    assert not StreamFilter("z", "<", 2).matches({"z": 3})
    assert not StreamFilter("z", "<", 2).matches({"z": None})
    assert StreamFilter("x", "=", 5).matches({"x": 5})
    assert StreamFilter("x", ">=", 5).matches({"x": 5})
    with pytest.raises(ExecutionError):
        StreamFilter("x", "~", 5)


def test_stream_push_and_capacity():
    stream = SensorStream("s", capacity=10)
    assert stream.push_many(make_readings(25)) == 25
    assert len(stream) == 10  # oldest readings fell out
    assert stream.readings[0]["t"] == 15.0


def test_stream_filtered_matches_sensor_query():
    stream = SensorStream("s")
    stream.push_many(make_readings(30))
    below = stream.filtered([StreamFilter("z", "<", 2)])
    assert all(reading["z"] < 2 for reading in below)
    assert len(below) == 20


def test_stream_to_relation():
    stream = SensorStream("s")
    stream.push_many(make_readings(10))
    relation = stream.to_relation()
    assert len(relation) == 10
    assert set(relation.column_names) == {"t", "z", "x"}


def test_window_aggregate_output_name_and_compute():
    aggregate = WindowAggregate("AVG", "z", alias="z_mean")
    assert aggregate.output_name == "z_mean"
    assert aggregate.compute([{"z": 1.0}, {"z": 3.0}]) == 2.0
    default_name = WindowAggregate("SUM", "z")
    assert default_name.output_name == "sum_z"
    count = WindowAggregate("COUNT", "*")
    assert count.compute([{"z": 1}, {"z": None}]) == 2


def test_window_aggregate_unknown_function():
    with pytest.raises(ExecutionError):
        WindowAggregate("REGR_SLOPE", "z").compute([{"z": 1}])


def test_tumbling_window_partitions_time():
    window = TumblingWindow(size_seconds=10, aggregates=[WindowAggregate("AVG", "z")])
    results = window.apply(make_readings(30))
    assert len(results) == 3
    assert results[0]["count"] == 10
    assert results[0]["window_start"] == 0.0
    assert results[1]["window_start"] == 10.0


def test_tumbling_window_empty():
    assert TumblingWindow(size_seconds=5).apply([]) == []


def test_sliding_window_latest_is_last_minute_average():
    readings = make_readings(120)
    window = SlidingWindow(size_seconds=60, aggregates=[WindowAggregate("AVG", "z")])
    latest = window.latest(readings)
    assert latest["count"] == 60
    # Average of z over t in (59, 119].
    expected = sum(r["z"] for r in readings if r["t"] > 59) / 60
    assert latest["avg_z"] == pytest.approx(expected)


def test_sliding_window_slide_produces_overlapping_windows():
    window = SlidingWindow(size_seconds=10, aggregates=[WindowAggregate("MAX", "z")])
    steps = window.slide(make_readings(30), step_seconds=5)
    assert len(steps) >= 4
    assert steps[0]["count"] == 10


def test_stream_window_aggregate_end_to_end():
    stream = SensorStream("s")
    stream.push_many(make_readings(100))
    summary = stream.window_aggregate(
        size_seconds=60,
        aggregates=[WindowAggregate("AVG", "z"), WindowAggregate("COUNT", "*")],
        filters=[StreamFilter("z", "<", 8)],
    )
    assert summary["count"] > 0
    assert summary["avg_z"] < 8


# ---------------------------------------------------------------------------
# typed column backings on stream-fed relations (UNTYPED_BACKING regression)
# ---------------------------------------------------------------------------


def test_stream_to_relation_builds_typed_backings():
    from repro.engine.columns import TypedColumn
    from repro.engine.schema import ColumnDef, Schema
    from repro.engine.types import DataType

    schema = Schema(
        [
            ColumnDef(name="t", data_type=DataType.FLOAT),
            ColumnDef(name="z", data_type=DataType.FLOAT),
            ColumnDef(name="on", data_type=DataType.BOOLEAN),
        ]
    )
    stream = SensorStream("s", schema=schema)
    # Sensors emit ints where the declared schema says FLOAT ("t": 0, 1, ..
    # would previously degrade the whole column to a generic list).
    stream.push_many(
        [{"t": i, "z": round(i * 0.1, 3), "on": i % 2 == 0} for i in range(20)]
    )
    relation = stream.to_relation()
    backing = {
        column_def.name: column
        for column_def, column in zip(relation.schema.columns, relation.columns())
    }
    assert isinstance(backing["t"], TypedColumn) and backing["t"].typecode == "d"
    assert isinstance(backing["z"], TypedColumn) and backing["z"].typecode == "d"
    assert isinstance(backing["on"], TypedColumn) and backing["on"].typecode == "b"
    assert relation.rows[3]["t"] == 3.0 and type(relation.rows[3]["t"]) is float


def test_tumbling_window_to_relation_builds_typed_backings():
    from repro.engine.columns import TypedColumn

    window = TumblingWindow(size_seconds=10, aggregates=[WindowAggregate("AVG", "z")])
    relation = window.to_relation(make_readings(60))
    assert len(relation) == 6
    backing = {
        column_def.name: column
        for column_def, column in zip(relation.schema.columns, relation.columns())
    }
    # window_start stays float across every window (the first window used
    # to take its type from the raw reading, flipping backings when t=0).
    assert isinstance(backing["window_start"], TypedColumn)
    assert backing["window_start"].typecode == "d"
    assert isinstance(backing["count"], TypedColumn)
    assert backing["count"].typecode == "q"
    assert isinstance(backing["avg_z"], TypedColumn)


def test_stream_fed_query_never_bails_untyped():
    """Pin the regression: vectorized kernels engage on stream-fed
    relations — typed scans recorded, zero ``untyped_backing`` bails."""
    from repro.engine.database import Database
    from repro.obs.metrics import delta, registry

    stream = SensorStream("s")
    stream.push_many(
        [
            {"t": i, "z": round((i % 7) * 0.3, 3), "x": float(i % 5)}
            for i in range(200)
        ]
    )
    database = Database(name="sensor-local")
    database.register("s", stream.to_relation())
    before = registry.snapshot(prefix="engine.vectorized.")
    result = database.query("SELECT x, AVG(z) AS az FROM s WHERE z < 1.5 GROUP BY x")
    assert len(result) == 5
    diff = delta(before, registry.snapshot(prefix="engine.vectorized."))
    assert diff.get("engine.vectorized.typed", 0) >= 1
    assert not diff.get("engine.vectorized.bails.untyped_backing", 0)
